"""Versioned on-disk model registry with hot activation and rollback.

The serving layer never points at a bare artifact file — it points at a
**registry**, a directory of named models each holding every published
version plus a pointer to the live one::

    <registry>/
      <name>/
        ACTIVE            # JSON {"version": ..., "previous": ...}
        v1/model.npz      # one Anonymizer.save() artifact pair per version
        v1/model.json
        v2/model.npz
        v2/model.json

Versions are immutable once published (a publish lands in a fresh
directory; nothing is ever overwritten), so "deploy" and "undo" are both
just the ACTIVE pointer moving — written atomically through
:mod:`repro.runtime.atomic`, so a crash mid-switch leaves the old pointer
intact and a reader never observes a half-written one.  The pointer also
remembers the previously active version, which is exactly what
:meth:`ModelRegistry.rollback` restores.

Loads go through :func:`~repro.serving.model.read_model_artifact`, so
every registry read is format-version checked and content-checksum
verified; damage surfaces as the typed
:class:`~repro.runtime.ArtifactError` hierarchy rather than a numpy
traceback.
"""

from __future__ import annotations

from pathlib import Path

from ..backend import ComputeBackend
from ..runtime.atomic import ArtifactError, atomic_write_json, read_json
from .model import TransformModel

#: File name of the artifact pair inside each version directory.
_ARTIFACT_STEM = "model"

#: File name of the active-version pointer inside each model directory.
_ACTIVE_POINTER = "ACTIVE"


class ModelRegistryError(ArtifactError):
    """A registry operation failed (unknown model/version, bad layout)."""


def _check_component(value: str, what: str) -> str:
    """Reject names/versions that would escape the registry layout."""
    if (
        not value
        or value != Path(value).name
        or value.startswith(".")
        or value == _ACTIVE_POINTER
    ):
        raise ModelRegistryError(
            f"invalid {what} {value!r}: must be a plain directory name "
            "(no separators, no leading dot)"
        )
    return value


class ModelRegistry:
    """Directory of versioned, checksum-verified anonymization models.

    Parameters
    ----------
    root:
        The registry directory.  Created lazily on first
        :meth:`publish`; reads against a missing registry raise
        :class:`ModelRegistryError`.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    # -- layout helpers ------------------------------------------------------------

    def model_dir(self, name: str) -> Path:
        """Directory holding every version of one named model."""
        return self.root / _check_component(name, "model name")

    def version_dir(self, name: str, version: str) -> Path:
        """Directory holding one published version's artifact pair."""
        return self.model_dir(name) / _check_component(version, "version")

    def artifact_path(self, name: str, version: str) -> Path:
        """The ``.npz`` half of one version's artifact pair."""
        return self.version_dir(name, version) / f"{_ARTIFACT_STEM}.npz"

    # -- listing -------------------------------------------------------------------

    def names(self) -> list[str]:
        """Sorted names of every model with at least one published version."""
        if not self.root.is_dir():
            return []
        return sorted(
            entry.name
            for entry in self.root.iterdir()
            if entry.is_dir() and self.versions(entry.name)
        )

    def versions(self, name: str) -> list[str]:
        """Published versions of ``name``, oldest first."""
        directory = self.model_dir(name)
        if not directory.is_dir():
            return []
        found = [
            entry.name
            for entry in directory.iterdir()
            if entry.is_dir() and (entry / f"{_ARTIFACT_STEM}.npz").exists()
        ]
        return sorted(found, key=_version_sort_key)

    def active_version(self, name: str) -> str | None:
        """The live version of ``name`` (``None`` if nothing is active)."""
        pointer = self.model_dir(name) / _ACTIVE_POINTER
        if not pointer.exists():
            return None
        payload = read_json(pointer, kind="registry pointer")
        version = payload.get("version")
        return str(version) if version is not None else None

    def describe(self) -> dict:
        """JSON-ready registry listing (the ``/v1/models`` skeleton)."""
        return {
            name: {
                "versions": self.versions(name),
                "active": self.active_version(name),
            }
            for name in self.names()
        }

    # -- publishing and the ACTIVE pointer -----------------------------------------

    def publish(
        self,
        name: str,
        model,
        *,
        version: str | None = None,
        activate: bool = True,
    ) -> str:
        """Save a fitted model as a new immutable version; return the version.

        ``model`` is anything with the ``Anonymizer.save(path)`` artifact
        contract.  ``version`` defaults to the next ``v<N>``; publishing
        over an existing version is refused (versions are immutable —
        publish a new one instead).  With ``activate`` (the default) the
        new version becomes live immediately.
        """
        if version is None:
            version = f"v{_next_version_number(self.versions(name))}"
        directory = self.version_dir(name, version)
        if directory.exists():
            raise ModelRegistryError(
                f"version {version!r} of model {name!r} already exists; "
                "registry versions are immutable — publish a new version"
            )
        directory.mkdir(parents=True)
        model.save(directory / _ARTIFACT_STEM)
        if activate:
            self.activate(name, version)
        return version

    def activate(self, name: str, version: str) -> None:
        """Atomically point ``name`` at ``version`` (hot swap).

        The previous live version is remembered in the pointer, which is
        what :meth:`rollback` restores.
        """
        if not self.artifact_path(name, version).exists():
            raise ModelRegistryError(
                f"cannot activate version {version!r} of model {name!r}: "
                f"no such version is published (have {self.versions(name)})"
            )
        previous = self.active_version(name)
        atomic_write_json(
            self.model_dir(name) / _ACTIVE_POINTER,
            {"version": version, "previous": previous},
        )

    def rollback(self, name: str) -> str:
        """Re-activate the previously active version; return it."""
        pointer = self.model_dir(name) / _ACTIVE_POINTER
        if not pointer.exists():
            raise ModelRegistryError(
                f"model {name!r} has no active version to roll back from"
            )
        payload = read_json(pointer, kind="registry pointer")
        previous = payload.get("previous")
        if not previous:
            raise ModelRegistryError(
                f"model {name!r} has no previous version recorded; nothing "
                "to roll back to"
            )
        self.activate(name, str(previous))
        return str(previous)

    # -- loading -------------------------------------------------------------------

    def load(
        self,
        name: str,
        version: str | None = None,
        *,
        backend: ComputeBackend | str | None = None,
        mmap_mode: str | None = None,
    ) -> TransformModel:
        """Load one version (default: the active one) as a ``TransformModel``.

        ``mmap_mode="r"`` maps the arrays read-only so concurrent workers
        loading the same version share page-cache pages.
        """
        if version is None:
            version = self.active_version(name)
            if version is None:
                raise ModelRegistryError(
                    f"model {name!r} has no active version "
                    f"(published: {self.versions(name) or 'none'}); "
                    "activate one first"
                )
        path = self.artifact_path(name, version)
        if not path.exists():
            raise ModelRegistryError(
                f"model {name!r} has no published version {version!r} "
                f"(have {self.versions(name)})"
            )
        return TransformModel.load(path, backend=backend, mmap_mode=mmap_mode)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ModelRegistry(root={str(self.root)!r})"


def _version_sort_key(version: str) -> tuple:
    """Sort ``v2`` before ``v10`` while tolerating arbitrary labels."""
    if version.startswith("v") and version[1:].isdigit():
        return (0, int(version[1:]), version)
    return (1, 0, version)


def _next_version_number(existing: list[str]) -> int:
    """Smallest ``N`` such that ``v<N>`` is unused (monotonic over ``v*``)."""
    numbers = [
        int(v[1:]) for v in existing if v.startswith("v") and v[1:].isdigit()
    ]
    return max(numbers, default=0) + 1
