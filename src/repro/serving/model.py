"""The minimal transform-time model — what a serving worker actually holds.

A fitted :class:`~repro.core.model.Anonymizer` carries two kinds of state:
the *fit-time* artifacts (the partition, per-cluster EMDs, the structured
run report, and — during ``fit`` itself — live engine buffers and EMD
trackers) and the *transform-time* state that serving a batch actually
needs: the per-cluster quasi-identifier representatives, the fitted
:class:`~repro.distance.records.QIEncoder`, the batch schema to validate
against, and the declared policy/audit metadata.  :class:`TransformModel`
is exactly that second half, split out so the serving path — registry
loads, the coalescing batcher, every HTTP worker — never holds (or pays
the memory of) fit-time engine state.  ``Anonymizer`` delegates its own
``transform``/``assign`` to an internal :class:`TransformModel`, so both
paths are one implementation and stay bit-for-bit identical.

The batch pipeline is deliberately staged::

    encoded = model.encode_batch(batch)     # schema check + ONE encode
    ids     = model.assign_encoded(encoded) # one backend query
    release = model.apply_assignment(batch, ids)

so callers that need the intermediate products (the serving cache keys on
encoded rows; the batcher coalesces ``assign_encoded`` calls) reuse the
same single encoding instead of re-deriving it — the schema is scanned
once and the encoder runs once per batch, pinned by a call-count test.
"""

from __future__ import annotations

from pathlib import Path
from typing import Mapping

import numpy as np

from ..backend import ComputeBackend, resolve_backend
from ..core.policy import PrivacyPolicy, as_policy
from ..core.validation import BatchSchemaError
from ..data.attributes import AttributeRole, AttributeSpec
from ..data.dataset import Microdata
from ..distance.records import QIEncoder
from ..runtime.atomic import (
    ArtifactVersionError,
    read_json,
    read_npz,
    verify_array_checksums,
)
from ..runtime.serialize import spec_from_dict

#: On-disk model format version (bump on incompatible layout changes).
#: Version 2 added content checksums to the sidecar (atomic save/load).
#: Owned here because both loaders — ``Anonymizer.load`` and
#: :meth:`TransformModel.load` — read the same artifact pair.
MODEL_FORMAT_VERSION = 2


def read_model_artifact(
    path: str | Path, *, mmap_mode: str | None = None
) -> tuple[dict, dict[str, np.ndarray], Path]:
    """Read and verify a saved model's ``(sidecar payload, arrays, npz path)``.

    The shared reading half of ``Anonymizer.save``'s artifact contract:
    resolve the ``.npz`` + ``.json`` pair, check the format version,
    load the arrays (``mmap_mode="r"`` maps them read-only in place, so
    concurrent serving workers share one set of page-cache pages instead
    of each copying the arrays) and verify every recorded content
    checksum.  Damage surfaces as the typed
    :class:`~repro.runtime.ArtifactError` hierarchy.
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    sidecar = path.with_suffix(".json")
    payload = read_json(sidecar, kind="model")
    version = payload.get("format_version")
    if version != MODEL_FORMAT_VERSION:
        raise ArtifactVersionError(
            f"model {sidecar} has format version {version!r}, this build "
            f"reads version {MODEL_FORMAT_VERSION}; re-save the model "
            "with a matching library version"
        )
    arrays = read_npz(path, kind="model", mmap_mode=mmap_mode)
    verify_array_checksums(
        arrays, payload.get("checksums", {}), source=path, kind="model"
    )
    return payload, arrays, path


class TransformModel:
    """Transform-time half of a fitted anonymization model.

    Parameters
    ----------
    schema:
        The fitted table's :class:`~repro.data.attributes.AttributeSpec`
        tuple (what serving batches are validated against).
    qi_names:
        Quasi-identifier column names, in representative-column order.
    representatives:
        ``(n_clusters, len(qi_names))`` raw representative values — the
        rows a transformed record's quasi-identifiers are replaced with.
    encoder:
        The fit-time :class:`~repro.distance.records.QIEncoder`; embeds
        incoming batches into the *fit* data's geometry.
    policy:
        Declared :class:`~repro.core.policy.PrivacyPolicy` (any
        ``as_policy`` coercible).
    method, algorithm:
        Registered method name the model was fitted with, and the
        algorithm recorded in its result (metadata only on this path).
    report:
        JSON payload of the fit's :class:`~repro.core.model.RunReport`
        (exposed by the serving API's model listing; optional).
    backend:
        Default compute backend for :meth:`assign_encoded`; every query
        method also takes a per-call override.  Pure execution choice —
        results are bit-for-bit identical under every backend.
    encoded_representatives:
        Pre-encoded representatives; derived from ``encoder`` when
        omitted.
    """

    def __init__(
        self,
        *,
        schema: tuple[AttributeSpec, ...],
        qi_names: tuple[str, ...],
        representatives: np.ndarray,
        encoder: QIEncoder,
        policy: PrivacyPolicy | object,
        method: str = "tclose-first",
        algorithm: str | None = None,
        report: Mapping[str, object] | None = None,
        backend: ComputeBackend | str | None = None,
        encoded_representatives: np.ndarray | None = None,
    ) -> None:
        self.schema = tuple(schema)
        self.qi_names = tuple(qi_names)
        self.representatives = np.asarray(representatives)
        self.encoder = encoder
        self.policy = as_policy(policy)
        self.method = method
        self.algorithm = algorithm if algorithm is not None else method
        self.report = dict(report) if report else {}
        self.backend = resolve_backend(backend)
        if encoded_representatives is None:
            encoded_representatives = encoder.encode(self.representatives)
        self.encoded_representatives = np.asarray(encoded_representatives)
        self._schema_index = {s.name: s for s in self.schema}

    # -- construction -------------------------------------------------------------

    @classmethod
    def from_anonymizer(cls, model) -> "TransformModel":
        """The transform-time state of a fitted ``Anonymizer`` (shared arrays)."""
        serving = model.transform_model_
        if serving is None:  # pragma: no cover - guarded by _require_fitted
            raise ValueError("the Anonymizer is not fitted")
        return serving

    @classmethod
    def from_artifact(
        cls,
        payload: dict,
        arrays: Mapping[str, np.ndarray],
        *,
        backend: ComputeBackend | str | None = None,
    ) -> "TransformModel":
        """Build from a verified model artifact's sidecar payload + arrays."""
        return cls(
            schema=tuple(spec_from_dict(d) for d in payload["schema"]),
            qi_names=tuple(payload["qi_names"]),
            representatives=arrays["representatives"],
            encoder=QIEncoder.from_dict(payload["encoder"]),
            policy=PrivacyPolicy.from_dict(payload["policy"]),
            method=payload["method"],
            algorithm=payload["algorithm"],
            report=payload.get("report"),
            backend=backend,
        )

    @classmethod
    def load(
        cls,
        path: str | Path,
        *,
        backend: ComputeBackend | str | None = None,
        mmap_mode: str | None = None,
    ) -> "TransformModel":
        """Load only the transform-time state from ``Anonymizer.save`` output.

        Reads the same ``.npz`` + ``.json`` artifact pair as
        ``Anonymizer.load`` (same typed errors on damage) but rebuilds
        none of the fit-time state — no partition, no cluster EMDs, no
        result object — so a serving worker's per-model footprint is the
        representatives plus a handful of floats.  ``mmap_mode="r"``
        memory-maps the arrays read-only, letting every worker process
        that loads the same artifact share one set of page-cache pages.
        """
        payload, arrays, _ = read_model_artifact(path, mmap_mode=mmap_mode)
        return cls.from_artifact(payload, arrays, backend=backend)

    # -- shape --------------------------------------------------------------------

    @property
    def n_clusters(self) -> int:
        """Number of fitted cluster representatives."""
        return int(self.representatives.shape[0])

    # -- the staged batch pipeline ------------------------------------------------

    def check_batch(self, batch: Microdata) -> None:
        """Validate a serving batch against the fitted schema (one scan).

        Every quasi-identifier column must be present with the fitted kind
        and category set; anything else raises
        :class:`~repro.core.validation.BatchSchemaError`.
        """
        for name in self.qi_names:
            if name not in batch:
                raise BatchSchemaError(
                    f"batch is missing quasi-identifier column {name!r}"
                )
            fitted, incoming = self._schema_index[name], batch.spec(name)
            if fitted.kind is not incoming.kind or fitted.categories != incoming.categories:
                raise BatchSchemaError(
                    f"batch column {name!r} does not match the fitted schema "
                    f"(fitted {fitted.kind}/{len(fitted.categories)} categories, "
                    f"batch {incoming.kind}/{len(incoming.categories)})"
                )

    def encode_batch(self, batch: Microdata) -> np.ndarray:
        """Schema-check then encode a batch's quasi-identifiers — once.

        The single entry point producing the encoded query matrix every
        downstream consumer (distance query, serving cache key, batcher)
        reuses; ``transform``/``assign`` each call this exactly one time
        per batch (pinned by a call-count test), where the pre-split code
        scanned the schema twice per ``transform``.
        """
        self.check_batch(batch)
        return self.encoder.encode(batch.matrix(self.qi_names))

    def assign_encoded(
        self,
        encoded: np.ndarray,
        *,
        backend: ComputeBackend | None = None,
    ) -> np.ndarray:
        """Nearest fitted cluster id per pre-encoded row.

        One backend ``assign_nearest`` query: the canonical distance
        kernel per row against every fitted representative, exact ties to
        the lowest cluster id.  Per-row results are independent of which
        other rows share the call — the property the coalescing batcher's
        bit-for-bit contract rests on.
        """
        backend = self.backend if backend is None else backend
        return backend.assign_nearest(encoded, self.encoded_representatives)

    def assign(
        self,
        batch: Microdata,
        *,
        backend: ComputeBackend | None = None,
    ) -> np.ndarray:
        """Nearest fitted cluster id for each batch record."""
        return self.assign_encoded(self.encode_batch(batch), backend=backend)

    def apply_assignment(
        self, batch: Microdata, assignment: np.ndarray
    ) -> Microdata:
        """Build the anonymized batch from per-record cluster ids.

        Replaces each record's quasi-identifiers with its assigned
        cluster's representative values; confidential and other columns
        pass through untouched, identifier columns are dropped.
        """
        replacements = {
            name: self.representatives[assignment, j]
            for j, name in enumerate(self.qi_names)
        }
        return batch.with_columns(replacements).drop_identifiers()

    def transform(
        self,
        batch: Microdata,
        *,
        backend: ComputeBackend | None = None,
    ) -> Microdata:
        """Anonymize new records against the fitted representatives.

        ``encode_batch`` → ``assign_encoded`` → ``apply_assignment``: one
        schema scan, one encoding, one backend query per batch.
        """
        encoded = self.encode_batch(batch)
        assignment = self.assign_encoded(encoded, backend=backend)
        return self.apply_assignment(batch, assignment)

    # -- serving metadata ----------------------------------------------------------

    def batch_schema(
        self, available: tuple[str, ...] | None = None
    ) -> tuple[AttributeSpec, ...]:
        """Schema for reading serving batches (e.g. ``read_csv(path, schema=...)``).

        The fitted schema minus identifier columns (a serving batch should
        not carry direct identifiers; any that do appear are dropped by
        :meth:`transform` anyway).  With ``available`` (e.g. a CSV header),
        the schema is additionally filtered to the columns actually
        present — every quasi-identifier must still be among them.
        """
        specs = tuple(
            s for s in self.schema if s.role is not AttributeRole.IDENTIFIER
        )
        if available is not None:
            present = set(available)
            missing = [n for n in self.qi_names if n not in present]
            if missing:
                raise BatchSchemaError(
                    f"batch is missing quasi-identifier column(s) {missing}"
                )
            specs = tuple(s for s in specs if s.name in present)
        return specs

    def describe(self) -> dict:
        """JSON-ready metadata for the serving API's model listing."""
        return {
            "policy": self.policy.spec(),
            "method": self.method,
            "algorithm": self.algorithm,
            "n_clusters": self.n_clusters,
            "quasi_identifiers": list(self.qi_names),
            "satisfied": self.report.get("satisfied"),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TransformModel(policy={self.policy.spec()!r}, "
            f"method={self.method!r}, n_clusters={self.n_clusters})"
        )
