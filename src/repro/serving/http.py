"""Persistent-connection HTTP/1.1 plumbing over asyncio streams.

The repo's posture is numpy-only at runtime, so the serving front end
cannot lean on aiohttp or another framework.  This module is the small
amount of HTTP the service actually needs, written against
``asyncio.start_server`` streams — but unlike the first cut (one
request per connection, ``Connection: close``), it is a real HTTP/1.1
state machine built for sustained load:

* **keep-alive by default** — HTTP/1.1 connections persist across
  requests (``Connection: close`` honored, HTTP/1.0 closes unless the
  client asks ``keep-alive``), so a client pays the TCP connect once
  per session, not once per request;
* **request pipelining** — :func:`run_connection` parses ahead on the
  buffered stream while earlier requests are still computing, and a
  single writer coroutine emits the responses strictly in request
  order (the pipeline depth is bounded, so a flood of parsed-ahead
  requests cannot queue unbounded work);
* **strict framing** — bodies require ``Content-Length`` (``411`` on a
  body-carrying method without one), the 64 MiB body cap is enforced
  from the *header* before a single body byte is buffered (``413``),
  and absurd or malformed lengths are typed ``400``s;
* **per-connection limits** — an idle timeout between requests and a
  max-requests-per-connection cap (the final response carries
  ``Connection: close``), both in :class:`ConnectionLimits`.

Deliberate non-goals, documented so nobody grows them accidentally:
no chunked transfer encoding, no TLS, no multipart.  The service's
requests are small JSON bodies and its deployment story is a trusted
network behind the caller's own ingress; each omission keeps the
parser small enough to audit.

The client half lives here too: :class:`HttpClient` is a blocking
keep-alive JSON client (stdlib ``http.client`` underneath, reconnecting
transparently when the server rotates the connection) used by the CLI,
the examples, the smoke check and the serving benchmark;
:func:`http_json` remains the one-shot helper for single requests.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import math
import time
from urllib.parse import parse_qsl, urlsplit

#: Upper bound on one request line or header line, bytes.
_MAX_LINE = 16 * 1024

#: Upper bound on the number of header lines in one request.
_MAX_HEADERS = 128

#: Upper bound on request bodies, bytes (batches beyond this belong in
#: files).  Enforced from the ``Content-Length`` header *before* any body
#: byte is read, so an oversized declaration cannot make the server
#: buffer the payload first.
MAX_BODY_BYTES = 64 * 1024 * 1024

#: Methods whose requests carry a body and therefore must declare
#: ``Content-Length`` (411 otherwise).
_BODY_METHODS = frozenset({"POST", "PUT", "PATCH"})

#: Reason phrases for the statuses the service emits.
_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    411: "Length Required",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class HttpError(Exception):
    """A request that must be answered with an HTTP error status.

    Raised by the parser and by endpoint handlers; the connection loop
    turns it into a JSON error body with the carried ``status``.
    ``error_type`` (when set) becomes a machine-readable ``"type"``
    field in the JSON body, and ``retry_after_s`` is surfaced both in
    the body and as a ``Retry-After`` response header (ceiled to whole
    seconds, per RFC 9110's delta-seconds grammar) — the 429 overload
    contract.
    """

    def __init__(
        self,
        status: int,
        message: str,
        *,
        error_type: str | None = None,
        retry_after_s: float | None = None,
    ) -> None:
        super().__init__(message)
        self.status = int(status)
        self.message = message
        self.error_type = error_type
        self.retry_after_s = retry_after_s

    def payload(self) -> dict:
        """The JSON error body."""
        out: dict = {"error": self.message}
        if self.error_type is not None:
            out["type"] = self.error_type
        if self.retry_after_s is not None:
            out["retry_after_s"] = self.retry_after_s
        return out

    def headers(self) -> dict[str, str] | None:
        """Extra response headers (``Retry-After`` for 429s)."""
        if self.retry_after_s is None:
            return None
        return {"Retry-After": str(max(0, math.ceil(self.retry_after_s)))}


class Request:
    """One parsed HTTP request: method, path, query, headers, body."""

    __slots__ = ("method", "path", "query", "headers", "body", "version")

    def __init__(
        self,
        method: str,
        path: str,
        query: dict[str, str],
        headers: dict[str, str],
        body: bytes,
        version: str = "HTTP/1.1",
    ) -> None:
        self.method = method
        self.path = path
        self.query = query
        self.headers = headers
        self.body = body
        self.version = version

    @property
    def keep_alive(self) -> bool:
        """Whether HTTP semantics allow reusing the connection after this.

        HTTP/1.1 defaults to persistent unless the client sent
        ``Connection: close``; HTTP/1.0 defaults to closing unless the
        client asked for ``keep-alive``.
        """
        tokens = {
            token.strip().lower()
            for token in self.headers.get("connection", "").split(",")
            if token.strip()
        }
        if self.version == "HTTP/1.0":
            return "keep-alive" in tokens
        return "close" not in tokens

    def json(self) -> dict:
        """The body parsed as a JSON object (422 on anything else)."""
        if not self.body:
            return {}
        try:
            payload = json.loads(self.body)
        except json.JSONDecodeError as exc:
            raise HttpError(422, f"request body is not valid JSON ({exc})")
        if not isinstance(payload, dict):
            raise HttpError(422, "request body must be a JSON object")
        return payload


async def _read_line(reader: asyncio.StreamReader, what: str) -> bytes:
    """One CRLF-terminated line, typed 400s on overrun/truncation."""
    try:
        line = await reader.readuntil(b"\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            raise _CleanEOF()
        raise HttpError(400, f"truncated {what}")
    except asyncio.LimitOverrunError:
        raise HttpError(400, f"{what} too long")
    if len(line) > _MAX_LINE:
        raise HttpError(400, f"{what} too long")
    return line


class _CleanEOF(Exception):
    """Peer closed between requests — not an error, just end of session."""


async def read_request(reader: asyncio.StreamReader) -> Request | None:
    """Parse one request from a stream; ``None`` on a cleanly closed peer.

    Safe to call repeatedly on the same stream — anything the peer sent
    beyond this request stays buffered for the next call, which is what
    makes pipelined back-to-back requests in a single segment work.
    Malformed requests raise :class:`HttpError` (400/411/413) for the
    connection loop to answer.
    """
    try:
        line = await _read_line(reader, "request line")
    except _CleanEOF:
        return None
    parts = line.decode("latin-1").strip().split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HttpError(400, f"malformed request line {line!r}")
    method, target, version = parts[0].upper(), parts[1], parts[2]
    split = urlsplit(target)
    query = dict(parse_qsl(split.query))

    headers: dict[str, str] = {}
    while True:
        if len(headers) > _MAX_HEADERS:
            raise HttpError(400, "too many header lines")
        try:
            line = await _read_line(reader, "header line")
        except _CleanEOF:
            raise HttpError(400, "truncated header block")
        if line in (b"\r\n", b"\n"):
            break
        name, sep, value = line.decode("latin-1").partition(":")
        if not sep or not name.strip():
            raise HttpError(400, f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()

    if headers.get("transfer-encoding"):
        raise HttpError(400, "chunked request bodies are not supported")
    body = b""
    length = headers.get("content-length")
    if length is None:
        if method in _BODY_METHODS:
            raise HttpError(
                411,
                f"{method} requests must declare Content-Length",
                error_type="length_required",
            )
    else:
        try:
            n = int(length)
        except ValueError:
            raise HttpError(400, f"bad Content-Length {length!r}")
        if n < 0:
            raise HttpError(400, f"bad Content-Length {length!r}")
        # The body cap is enforced here, from the declared length, so an
        # oversized request is refused before any body byte is buffered.
        if n > MAX_BODY_BYTES:
            raise HttpError(
                413,
                f"request body of {n} bytes exceeds {MAX_BODY_BYTES}",
                error_type="payload_too_large",
            )
        if n:
            try:
                body = await reader.readexactly(n)
            except asyncio.IncompleteReadError:
                raise HttpError(400, "request body shorter than Content-Length")
    return Request(method, split.path, query, headers, body, version)


def render_response(
    status: int,
    payload: object,
    *,
    keep_alive: bool = False,
    headers: dict[str, str] | None = None,
) -> bytes:
    """Serialize one complete JSON response with explicit framing.

    ``Content-Length`` is always present, so clients can frame responses
    on a persistent connection; ``Connection`` reflects whether the
    server will keep this connection open.
    """
    body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
    reason = _REASONS.get(status, "Unknown")
    extra = ""
    if headers:
        extra = "".join(f"{name}: {value}\r\n" for name, value in headers.items())
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        "Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"{extra}"
        f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
        "\r\n"
    ).encode("latin-1")
    return head + body


async def write_response(
    writer: asyncio.StreamWriter,
    status: int,
    payload: object,
    *,
    keep_alive: bool = False,
    headers: dict[str, str] | None = None,
) -> None:
    """Write a JSON response and flush it."""
    writer.write(
        render_response(status, payload, keep_alive=keep_alive, headers=headers)
    )
    await writer.drain()


class ConnectionLimits:
    """Per-connection policy knobs for :func:`run_connection`.

    Parameters
    ----------
    idle_timeout_s:
        Close a keep-alive connection after this many seconds without a
        complete next request (also bounds how long a half-sent request
        can stall the connection).  ``0`` disables the timeout.
    max_requests:
        Serve at most this many requests per connection, answering the
        last one with ``Connection: close`` (bounds per-connection state
        lifetime behind long-lived proxies).  ``0`` means unlimited.
    pipeline_depth:
        Maximum number of parsed-ahead requests in flight per
        connection; parsing stalls (TCP backpressure) beyond it.
    """

    __slots__ = ("idle_timeout_s", "max_requests", "pipeline_depth")

    def __init__(
        self,
        idle_timeout_s: float = 60.0,
        max_requests: int = 0,
        pipeline_depth: int = 16,
    ) -> None:
        if pipeline_depth < 1:
            raise ValueError("pipeline_depth must be at least 1")
        self.idle_timeout_s = float(idle_timeout_s)
        self.max_requests = int(max_requests)
        self.pipeline_depth = int(pipeline_depth)


async def run_connection(
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    respond,
    limits: ConnectionLimits | None = None,
    *,
    draining: asyncio.Event | None = None,
) -> int:
    """Serve one persistent connection until close/timeout/limit; return
    the number of requests parsed.

    ``respond`` is an ``async (Request) -> (status, payload, headers)``
    callable that must not raise (the service maps everything to typed
    JSON errors).  Requests are parsed ahead (up to
    ``limits.pipeline_depth`` in flight) and dispatched concurrently;
    a single writer coroutine emits the responses strictly in request
    order, which is the HTTP/1.1 pipelining contract.

    When ``draining`` is set (graceful shutdown), in-flight responses
    finish and are written with ``Connection: close``; idle connections
    close immediately.
    """
    limits = limits if limits is not None else ConnectionLimits()
    # (task-or-None, keep_alive) pairs; None task = sentinel to stop.
    queue: asyncio.Queue = asyncio.Queue(maxsize=limits.pipeline_depth)
    broken = asyncio.Event()  # writer hit a dead socket; stop parsing

    async def writer_loop() -> None:
        """Emit responses in request order; survive a dead peer quietly.

        Never returns before consuming the sentinel — the parse loop
        relies on that to make its ``queue.put`` calls terminate.
        """
        while True:
            item = await queue.get()
            if item is None:
                return
            task, keep = item
            try:
                status, payload, headers = await task
            except asyncio.CancelledError:
                raise
            except Exception as exc:  # pragma: no cover - respond() catches
                status, payload, headers = (
                    500,
                    {"error": f"{exc.__class__.__name__}: {exc}"},
                    None,
                )
            if broken.is_set():
                continue
            try:
                await write_response(
                    writer, status, payload, keep_alive=keep, headers=headers
                )
            except (ConnectionError, OSError):
                broken.set()

    writer_task = asyncio.create_task(writer_loop())
    served = 0
    try:
        while not broken.is_set():
            read_task = asyncio.ensure_future(read_request(reader))
            waits = {read_task}
            drain_task = None
            if draining is not None and not draining.is_set():
                drain_task = asyncio.ensure_future(draining.wait())
                waits.add(drain_task)
            timeout = limits.idle_timeout_s or None
            done, _ = await asyncio.wait(
                waits, timeout=timeout, return_when=asyncio.FIRST_COMPLETED
            )
            if drain_task is not None and drain_task not in done:
                drain_task.cancel()
            if read_task not in done:
                # Idle timeout or drain started while no (complete)
                # request was in flight: close without answering.
                read_task.cancel()
                try:
                    await read_task
                except (asyncio.CancelledError, HttpError):
                    pass
                break
            try:
                request = read_task.result()
            except HttpError as exc:
                # Malformed framing: the stream position is no longer
                # trustworthy, so answer (in order, after any pipelined
                # predecessors) and close.
                async def error_result(exc=exc):
                    return exc.status, exc.payload(), exc.headers()

                await queue.put((asyncio.ensure_future(error_result()), False))
                break
            if request is None:
                break
            served += 1
            keep = (
                request.keep_alive
                and not (limits.max_requests and served >= limits.max_requests)
                and not (draining is not None and draining.is_set())
            )
            await queue.put((asyncio.create_task(respond(request)), keep))
            if not keep:
                break
    except asyncio.CancelledError:
        # Forced shutdown: stop the writer too instead of stranding it
        # on queue.get() forever.
        writer_task.cancel()
        raise
    finally:
        if not writer_task.cancelled():
            await queue.put(None)
            try:
                await writer_task
            except asyncio.CancelledError:
                if not writer_task.cancelled():  # pragma: no cover
                    raise
    return served


# -- blocking clients ------------------------------------------------------------


class HttpClient:
    """Blocking keep-alive JSON client for one serving endpoint.

    Reuses a single ``http.client.HTTPConnection`` across requests — the
    server's persistent-connection default makes every call after the
    first skip the TCP connect/teardown — and transparently reconnects
    (retrying the request once) when the server rotated the connection
    (idle timeout, max-requests cap, restart).  ``connections_opened``
    counts the TCP connects the client actually paid, which the smoke
    check compares against the request count to prove reuse.

    Usable as a context manager; not thread-safe (one client per
    thread, matching ``http.client``).
    """

    def __init__(self, host: str, port: int, *, timeout: float = 30.0) -> None:
        self.host = host
        self.port = int(port)
        self.timeout = float(timeout)
        self._conn: http.client.HTTPConnection | None = None
        self.connections_opened = 0
        self.requests_sent = 0

    def _connect(self) -> http.client.HTTPConnection:
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        conn.connect()
        self.connections_opened += 1
        return conn

    def close(self) -> None:
        """Drop the pooled connection (idempotent)."""
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "HttpClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def request(
        self, method: str, path: str, payload: object | None = None
    ) -> tuple[int, dict]:
        """One JSON request over the pooled connection.

        Returns ``(status, decoded body)``; retries exactly once on a
        stale pooled connection (the server may close between requests),
        never on a fresh one.
        """
        body = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        for attempt in (0, 1):
            fresh = self._conn is None
            if fresh:
                self._conn = self._connect()
            try:
                self._conn.request(method, path, body=body, headers=headers)
                response = self._conn.getresponse()
                raw = response.read()
            except (http.client.HTTPException, ConnectionError, OSError):
                self.close()
                if fresh or attempt:
                    raise
                continue
            self.requests_sent += 1
            if response.will_close:
                self.close()
            try:
                decoded = json.loads(raw) if raw else {}
            except json.JSONDecodeError:
                decoded = {"raw": raw.decode("utf-8", "replace")}
            if not isinstance(decoded, dict):
                decoded = {"value": decoded}
            return response.status, decoded
        raise AssertionError("unreachable")  # pragma: no cover

    def request_with_retry(
        self,
        method: str,
        path: str,
        payload: object | None = None,
        *,
        max_attempts: int = 8,
        max_sleep_s: float = 2.0,
    ) -> tuple[int, dict]:
        """Like :meth:`request`, but honor 429 ``Retry-After`` backpressure.

        Retries an overloaded (429) response after the server-suggested
        delay (clamped to ``max_sleep_s``) up to ``max_attempts`` total
        tries, returning the last response either way.  This is the
        client half of the bounded-queue contract: a rejected request is
        *delayed*, never answered differently.
        """
        status, decoded = self.request(method, path, payload)
        for _ in range(max_attempts - 1):
            if status != 429:
                break
            delay = decoded.get("retry_after_s", 0.1)
            try:
                delay = float(delay)
            except (TypeError, ValueError):
                delay = 0.1
            time.sleep(min(max(delay, 0.01), max_sleep_s))
            status, decoded = self.request(method, path, payload)
        return status, decoded


def http_json(
    method: str,
    host: str,
    port: int,
    path: str,
    payload: object | None = None,
    *,
    timeout: float = 30.0,
) -> tuple[int, dict]:
    """Blocking one-shot JSON request against a serving endpoint.

    Opens a connection, performs one request, closes — the right shape
    for single calls (health probes, CLI one-offs).  Anything issuing
    more than one request should hold an :class:`HttpClient` instead and
    let keep-alive amortize the connect.
    """
    with HttpClient(host, port, timeout=timeout) as client:
        return client.request(method, path, payload)
