"""Minimal HTTP/1.1 plumbing over asyncio streams — no runtime deps.

The repo's posture is numpy-only at runtime, so the serving front end
cannot lean on aiohttp or another framework.  This module is the small
amount of HTTP the service actually needs, written against
``asyncio.start_server`` streams: a request parser
(:func:`read_request`) covering request line + headers +
``Content-Length`` bodies, a response writer (:func:`write_response`)
that always answers ``Connection: close`` JSON, and a blocking
:func:`http_json` client helper (stdlib ``http.client``) for the CLI,
examples, tests and the serving benchmark.

Deliberate non-goals, documented so nobody grows them accidentally:
no chunked transfer encoding, no keep-alive, no TLS, no multipart.  The
service's requests are small JSON bodies and its deployment story is a
trusted network behind the caller's own ingress; each omission keeps the
parser small enough to audit.
"""

from __future__ import annotations

import asyncio
import http.client
import json
from urllib.parse import parse_qsl, urlsplit

#: Upper bound on one request line or header line, bytes.
_MAX_LINE = 16 * 1024

#: Upper bound on request bodies, bytes (batches beyond this belong in files).
MAX_BODY_BYTES = 64 * 1024 * 1024

#: Reason phrases for the statuses the service emits.
_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class HttpError(Exception):
    """A request that must be answered with an HTTP error status.

    Raised by the parser and by endpoint handlers; the connection loop
    turns it into a JSON error body with the carried ``status``.
    """

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = int(status)
        self.message = message


class Request:
    """One parsed HTTP request: method, path, query, headers, body."""

    __slots__ = ("method", "path", "query", "headers", "body")

    def __init__(
        self,
        method: str,
        path: str,
        query: dict[str, str],
        headers: dict[str, str],
        body: bytes,
    ) -> None:
        self.method = method
        self.path = path
        self.query = query
        self.headers = headers
        self.body = body

    def json(self) -> dict:
        """The body parsed as a JSON object (422 on anything else)."""
        if not self.body:
            return {}
        try:
            payload = json.loads(self.body)
        except json.JSONDecodeError as exc:
            raise HttpError(422, f"request body is not valid JSON ({exc})")
        if not isinstance(payload, dict):
            raise HttpError(422, "request body must be a JSON object")
        return payload


async def read_request(reader: asyncio.StreamReader) -> Request | None:
    """Parse one request from a stream; ``None`` on a cleanly closed peer.

    Malformed requests raise :class:`HttpError` (400/413) for the
    connection loop to answer.
    """
    try:
        line = await reader.readuntil(b"\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise HttpError(400, "truncated request line")
    except asyncio.LimitOverrunError:
        raise HttpError(400, "request line too long")
    if len(line) > _MAX_LINE:
        raise HttpError(400, "request line too long")
    parts = line.decode("latin-1").strip().split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HttpError(400, f"malformed request line {line!r}")
    method, target = parts[0].upper(), parts[1]
    split = urlsplit(target)
    query = dict(parse_qsl(split.query))

    headers: dict[str, str] = {}
    while True:
        line = await reader.readuntil(b"\r\n")
        if len(line) > _MAX_LINE:
            raise HttpError(400, "header line too long")
        if line in (b"\r\n", b"\n"):
            break
        name, sep, value = line.decode("latin-1").partition(":")
        if not sep:
            raise HttpError(400, f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()

    body = b""
    length = headers.get("content-length")
    if length is not None:
        try:
            n = int(length)
        except ValueError:
            raise HttpError(400, f"bad Content-Length {length!r}")
        if n < 0:
            raise HttpError(400, f"bad Content-Length {length!r}")
        if n > MAX_BODY_BYTES:
            raise HttpError(
                413, f"request body of {n} bytes exceeds {MAX_BODY_BYTES}"
            )
        if n:
            try:
                body = await reader.readexactly(n)
            except asyncio.IncompleteReadError:
                raise HttpError(400, "request body shorter than Content-Length")
    elif headers.get("transfer-encoding"):
        raise HttpError(400, "chunked request bodies are not supported")
    return Request(method, split.path, query, headers, body)


def render_response(status: int, payload: object) -> bytes:
    """Serialize one complete ``Connection: close`` JSON response."""
    body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
    reason = _REASONS.get(status, "Unknown")
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        "Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        "Connection: close\r\n"
        "\r\n"
    ).encode("latin-1")
    return head + body


async def write_response(
    writer: asyncio.StreamWriter, status: int, payload: object
) -> None:
    """Write a JSON response and flush it (connection closes after)."""
    writer.write(render_response(status, payload))
    await writer.drain()


def http_json(
    method: str,
    host: str,
    port: int,
    path: str,
    payload: object | None = None,
    *,
    timeout: float = 30.0,
) -> tuple[int, dict]:
    """Blocking JSON request against a serving endpoint.

    The client half used by the CLI, the quickstart example, the smoke
    check and the serving benchmark: one request per connection (matching
    the server's ``Connection: close``), returning
    ``(status, decoded body)``.
    """
    body = None
    headers = {"Accept": "application/json"}
    if payload is not None:
        body = json.dumps(payload).encode("utf-8")
        headers["Content-Type"] = "application/json"
    conn = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        conn.request(method, path, body=body, headers=headers)
        response = conn.getresponse()
        raw = response.read()
    finally:
        conn.close()
    try:
        decoded = json.loads(raw) if raw else {}
    except json.JSONDecodeError:
        decoded = {"raw": raw.decode("utf-8", "replace")}
    if not isinstance(decoded, dict):
        decoded = {"value": decoded}
    return response.status, decoded
