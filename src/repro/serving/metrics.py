"""Serving metrics: per-request latency, batch coalescing, cache, queue.

The fit pipeline reports itself through a structured
:class:`~repro.core.model.RunReport`; this module is the serving-side
counterpart.  One :class:`ServingMetrics` instance rides along the whole
request path — the HTTP front end times every request, the coalescing
batcher records each backend flush (rows and how many concurrent
requests it merged), the transform cache reports hits and misses, and
the queue depth is sampled at every enqueue — and :meth:`snapshot`
renders the accumulated state as one JSON-ready dict (the ``/metrics``
endpoint's body, and the source of the serving benchmark's derived
rows/sec).  Counters are cumulative since construction; the snapshot is
cheap and lock-consistent, so capacity dashboards can poll it.
"""

from __future__ import annotations

import threading
import time


class _LatencyStat:
    """Running count/sum/min/max of one endpoint's request latencies."""

    __slots__ = ("count", "errors", "rows", "total_s", "min_s", "max_s")

    def __init__(self) -> None:
        self.count = 0
        self.errors = 0
        self.rows = 0
        self.total_s = 0.0
        self.min_s = float("inf")
        self.max_s = 0.0

    def add(self, seconds: float, rows: int, error: bool) -> None:
        self.count += 1
        self.rows += rows
        self.total_s += seconds
        self.min_s = min(self.min_s, seconds)
        self.max_s = max(self.max_s, seconds)
        if error:
            self.errors += 1

    def to_dict(self) -> dict:
        out = {
            "count": self.count,
            "errors": self.errors,
            "rows": self.rows,
            "latency_s": {
                "mean": self.total_s / self.count if self.count else 0.0,
                "min": self.min_s if self.count else 0.0,
                "max": self.max_s,
                "total": self.total_s,
            },
        }
        return out


class ServingMetrics:
    """Thread-safe accumulator for the serving path's observable state.

    Four families of signal, matching the knobs a deployment tunes:

    * **requests** — per-endpoint count/error/row totals and latency
      count-sum-min-max (enough for mean and tail bounds without a
      histogram dependency);
    * **batches** — every coalesced backend flush: how many rows it
      carried, how many concurrent requests it merged (the
      ``max_requests_coalesced`` field is what the CI smoke asserts
      ``> 1`` to prove coalescing actually happened);
    * **cache** — hit/miss totals and the derived hit rate;
    * **queue** — current and high-water pending row depth.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._started = time.time()
        self._requests: dict[str, _LatencyStat] = {}
        self._batches = 0
        self._batch_rows = 0
        self._batch_rows_max = 0
        self._batch_requests = 0
        self._batch_requests_max = 0
        self._cache_hits = 0
        self._cache_misses = 0
        self._queue_depth = 0
        self._queue_depth_max = 0

    # -- recording ----------------------------------------------------------------

    def record_request(
        self,
        endpoint: str,
        seconds: float,
        *,
        rows: int = 0,
        error: bool = False,
    ) -> None:
        """One served request: endpoint label, wall time, rows, outcome."""
        with self._lock:
            stat = self._requests.get(endpoint)
            if stat is None:
                stat = self._requests[endpoint] = _LatencyStat()
            stat.add(float(seconds), int(rows), bool(error))

    def record_batch(self, rows: int, requests: int) -> None:
        """One coalesced backend flush of ``rows`` rows from ``requests`` callers."""
        with self._lock:
            self._batches += 1
            self._batch_rows += int(rows)
            self._batch_rows_max = max(self._batch_rows_max, int(rows))
            self._batch_requests += int(requests)
            self._batch_requests_max = max(self._batch_requests_max, int(requests))

    def record_cache(self, hits: int, misses: int) -> None:
        """Cache outcomes of one lookup pass (row counts, not batches)."""
        with self._lock:
            self._cache_hits += int(hits)
            self._cache_misses += int(misses)

    def record_queue_depth(self, depth: int) -> None:
        """Sample the pending-row queue depth (tracks the high-water mark)."""
        with self._lock:
            self._queue_depth = int(depth)
            self._queue_depth_max = max(self._queue_depth_max, int(depth))

    # -- reporting ----------------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-ready state of every counter (the ``/metrics`` body)."""
        with self._lock:
            lookups = self._cache_hits + self._cache_misses
            return {
                "uptime_s": time.time() - self._started,
                "requests": {
                    name: stat.to_dict()
                    for name, stat in sorted(self._requests.items())
                },
                "batches": {
                    "count": self._batches,
                    "rows": self._batch_rows,
                    "rows_max": self._batch_rows_max,
                    "rows_mean": (
                        self._batch_rows / self._batches if self._batches else 0.0
                    ),
                    "requests_coalesced": self._batch_requests,
                    "max_requests_coalesced": self._batch_requests_max,
                },
                "cache": {
                    "hits": self._cache_hits,
                    "misses": self._cache_misses,
                    "hit_rate": self._cache_hits / lookups if lookups else 0.0,
                },
                "queue": {
                    "depth": self._queue_depth,
                    "depth_max": self._queue_depth_max,
                },
            }

    def format(self) -> str:
        """Multi-line human-readable rendering of :meth:`snapshot`."""
        snap = self.snapshot()
        lines = ["Serving metrics", "---------------"]
        for name, stat in snap["requests"].items():
            lat = stat["latency_s"]
            lines.append(
                f"{name:<14}: {stat['count']} requests "
                f"({stat['errors']} errors, {stat['rows']} rows), "
                f"latency mean {lat['mean'] * 1e3:.2f}ms "
                f"max {lat['max'] * 1e3:.2f}ms"
            )
        b = snap["batches"]
        lines.append(
            f"batches       : {b['count']} "
            f"(mean {b['rows_mean']:.1f} rows, max {b['rows_max']}, "
            f"max coalesced {b['max_requests_coalesced']} requests)"
        )
        c = snap["cache"]
        lines.append(
            f"cache         : {c['hits']} hits / {c['misses']} misses "
            f"(hit rate {c['hit_rate']:.1%})"
        )
        q = snap["queue"]
        lines.append(f"queue depth   : {q['depth']} (max {q['depth_max']})")
        return "\n".join(lines)
