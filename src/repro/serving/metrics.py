"""Serving metrics: per-request latency, batch coalescing, cache, queue.

The fit pipeline reports itself through a structured
:class:`~repro.core.model.RunReport`; this module is the serving-side
counterpart.  One :class:`ServingMetrics` instance rides along the whole
request path — the HTTP front end times every request and counts every
accepted connection, the coalescing batcher records each backend flush
(rows and how many concurrent requests it merged) plus every admission
rejection, the transform cache reports hits and misses, and the queue
depth is sampled at every enqueue — and :meth:`snapshot` renders the
accumulated state as one JSON-ready dict (the ``/metrics`` endpoint's
body, and the source of the serving benchmark's derived rows/sec).
Counters are cumulative since construction; the snapshot is cheap and
lock-consistent, so capacity dashboards can poll it.

Multi-worker topologies aggregate at scrape time: each worker
:meth:`persist`\\ s its own snapshot to a small per-worker JSON file
(atomic ``os.replace``, so a scraper never reads a torn write), and the
worker answering ``/metrics`` merges every peer's file with
:func:`merge_snapshots` — counters sum, high-water marks take the
per-worker max, and latency min/max fold across workers.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path


class _LatencyStat:
    """Running count/sum/min/max of one endpoint's request latencies."""

    __slots__ = ("count", "errors", "rows", "total_s", "min_s", "max_s")

    def __init__(self) -> None:
        self.count = 0
        self.errors = 0
        self.rows = 0
        self.total_s = 0.0
        self.min_s = float("inf")
        self.max_s = 0.0

    def add(self, seconds: float, rows: int, error: bool) -> None:
        self.count += 1
        self.rows += rows
        self.total_s += seconds
        self.min_s = min(self.min_s, seconds)
        self.max_s = max(self.max_s, seconds)
        if error:
            self.errors += 1

    def to_dict(self) -> dict:
        out = {
            "count": self.count,
            "errors": self.errors,
            "rows": self.rows,
            "latency_s": {
                "mean": self.total_s / self.count if self.count else 0.0,
                "min": self.min_s if self.count else 0.0,
                "max": self.max_s,
                "total": self.total_s,
            },
        }
        return out


class ServingMetrics:
    """Thread-safe accumulator for the serving path's observable state.

    Four families of signal, matching the knobs a deployment tunes:

    * **requests** — per-endpoint count/error/row totals and latency
      count-sum-min-max (enough for mean and tail bounds without a
      histogram dependency);
    * **batches** — every coalesced backend flush: how many rows it
      carried, how many concurrent requests it merged (the
      ``max_requests_coalesced`` field is what the CI smoke asserts
      ``> 1`` to prove coalescing actually happened);
    * **cache** — hit/miss totals and the derived hit rate;
    * **queue** — current and high-water pending row depth.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._started = time.time()
        self._requests: dict[str, _LatencyStat] = {}
        self._connections = 0
        self._batches = 0
        self._batch_rows = 0
        self._batch_rows_max = 0
        self._batch_requests = 0
        self._batch_requests_max = 0
        self._cache_hits = 0
        self._cache_misses = 0
        self._queue_depth = 0
        self._queue_depth_max = 0
        self._rejected_requests = 0
        self._rejected_rows = 0

    # -- recording ----------------------------------------------------------------

    def record_request(
        self,
        endpoint: str,
        seconds: float,
        *,
        rows: int = 0,
        error: bool = False,
    ) -> None:
        """One served request: endpoint label, wall time, rows, outcome."""
        with self._lock:
            stat = self._requests.get(endpoint)
            if stat is None:
                stat = self._requests[endpoint] = _LatencyStat()
            stat.add(float(seconds), int(rows), bool(error))

    def record_connection(self) -> None:
        """One accepted TCP connection (keep-alive reuse keeps this flat)."""
        with self._lock:
            self._connections += 1

    def record_rejected(self, rows: int) -> None:
        """One request refused by the admission queue (a served 429)."""
        with self._lock:
            self._rejected_requests += 1
            self._rejected_rows += int(rows)

    def record_batch(self, rows: int, requests: int) -> None:
        """One coalesced backend flush of ``rows`` rows from ``requests`` callers."""
        with self._lock:
            self._batches += 1
            self._batch_rows += int(rows)
            self._batch_rows_max = max(self._batch_rows_max, int(rows))
            self._batch_requests += int(requests)
            self._batch_requests_max = max(self._batch_requests_max, int(requests))

    def record_cache(self, hits: int, misses: int) -> None:
        """Cache outcomes of one lookup pass (row counts, not batches)."""
        with self._lock:
            self._cache_hits += int(hits)
            self._cache_misses += int(misses)

    def record_queue_depth(self, depth: int) -> None:
        """Sample the pending-row queue depth (tracks the high-water mark)."""
        with self._lock:
            self._queue_depth = int(depth)
            self._queue_depth_max = max(self._queue_depth_max, int(depth))

    # -- reporting ----------------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-ready state of every counter (the ``/metrics`` body)."""
        with self._lock:
            lookups = self._cache_hits + self._cache_misses
            return {
                "uptime_s": time.time() - self._started,
                "connections": self._connections,
                "requests": {
                    name: stat.to_dict()
                    for name, stat in sorted(self._requests.items())
                },
                "batches": {
                    "count": self._batches,
                    "rows": self._batch_rows,
                    "rows_max": self._batch_rows_max,
                    "rows_mean": (
                        self._batch_rows / self._batches if self._batches else 0.0
                    ),
                    "requests_coalesced": self._batch_requests,
                    "max_requests_coalesced": self._batch_requests_max,
                },
                "cache": {
                    "hits": self._cache_hits,
                    "misses": self._cache_misses,
                    "hit_rate": self._cache_hits / lookups if lookups else 0.0,
                },
                "queue": {
                    "depth": self._queue_depth,
                    "depth_max": self._queue_depth_max,
                    "rejected_requests": self._rejected_requests,
                    "rejected_rows": self._rejected_rows,
                },
            }

    def persist(self, path: str | Path) -> None:
        """Write :meth:`snapshot` to ``path`` atomically (temp + replace).

        The per-worker half of multi-process ``/metrics``: each worker
        owns one snapshot file, so there are no cross-process writers to
        coordinate, and the atomic replace means a concurrent scrape
        reads either the previous complete snapshot or this one — never
        a torn write.
        """
        path = Path(path)
        payload = json.dumps(self.snapshot(), sort_keys=True)
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(payload + "\n")
        os.replace(tmp, path)

    def format(self) -> str:
        """Multi-line human-readable rendering of :meth:`snapshot`."""
        snap = self.snapshot()
        lines = ["Serving metrics", "---------------"]
        for name, stat in snap["requests"].items():
            lat = stat["latency_s"]
            lines.append(
                f"{name:<14}: {stat['count']} requests "
                f"({stat['errors']} errors, {stat['rows']} rows), "
                f"latency mean {lat['mean'] * 1e3:.2f}ms "
                f"max {lat['max'] * 1e3:.2f}ms"
            )
        b = snap["batches"]
        lines.append(
            f"batches       : {b['count']} "
            f"(mean {b['rows_mean']:.1f} rows, max {b['rows_max']}, "
            f"max coalesced {b['max_requests_coalesced']} requests)"
        )
        c = snap["cache"]
        lines.append(
            f"cache         : {c['hits']} hits / {c['misses']} misses "
            f"(hit rate {c['hit_rate']:.1%})"
        )
        q = snap["queue"]
        lines.append(
            f"queue depth   : {q['depth']} (max {q['depth_max']}, "
            f"{q['rejected_requests']} rejected)"
        )
        return "\n".join(lines)


def merge_snapshots(snapshots: list[dict]) -> dict:
    """Fold per-worker :meth:`ServingMetrics.snapshot` dicts into one view.

    The scrape-time aggregation behind multi-worker ``/metrics``:
    counters (requests, rows, errors, batches, cache, rejections,
    connections) **sum** across workers, high-water marks
    (``rows_max``, ``max_requests_coalesced``, ``depth_max``) take the
    per-worker **max** — each worker's queue is independently bounded,
    so the fleet-wide guarantee is the per-worker bound, not the sum —
    latency min/max fold, means are recomputed from the summed
    count/total, and ``workers`` reports how many snapshots merged.
    An empty list merges to an all-zero snapshot.
    """
    merged_requests: dict[str, dict] = {}
    out = {
        "uptime_s": 0.0,
        "workers": len(snapshots),
        "connections": 0,
        "requests": merged_requests,
        "batches": {
            "count": 0,
            "rows": 0,
            "rows_max": 0,
            "rows_mean": 0.0,
            "requests_coalesced": 0,
            "max_requests_coalesced": 0,
        },
        "cache": {"hits": 0, "misses": 0, "hit_rate": 0.0},
        "queue": {
            "depth": 0,
            "depth_max": 0,
            "rejected_requests": 0,
            "rejected_rows": 0,
        },
    }
    for snap in snapshots:
        out["uptime_s"] = max(out["uptime_s"], float(snap.get("uptime_s", 0.0)))
        out["connections"] += int(snap.get("connections", 0))
        for name, stat in snap.get("requests", {}).items():
            into = merged_requests.setdefault(
                name,
                {
                    "count": 0,
                    "errors": 0,
                    "rows": 0,
                    "latency_s": {
                        "mean": 0.0,
                        "min": float("inf"),
                        "max": 0.0,
                        "total": 0.0,
                    },
                },
            )
            into["count"] += int(stat["count"])
            into["errors"] += int(stat["errors"])
            into["rows"] += int(stat["rows"])
            lat, src = into["latency_s"], stat["latency_s"]
            lat["total"] += float(src["total"])
            lat["max"] = max(lat["max"], float(src["max"]))
            if int(stat["count"]):
                lat["min"] = min(lat["min"], float(src["min"]))
        b, sb = out["batches"], snap.get("batches", {})
        b["count"] += int(sb.get("count", 0))
        b["rows"] += int(sb.get("rows", 0))
        b["rows_max"] = max(b["rows_max"], int(sb.get("rows_max", 0)))
        b["requests_coalesced"] += int(sb.get("requests_coalesced", 0))
        b["max_requests_coalesced"] = max(
            b["max_requests_coalesced"], int(sb.get("max_requests_coalesced", 0))
        )
        c, sc = out["cache"], snap.get("cache", {})
        c["hits"] += int(sc.get("hits", 0))
        c["misses"] += int(sc.get("misses", 0))
        q, sq = out["queue"], snap.get("queue", {})
        q["depth"] += int(sq.get("depth", 0))
        q["depth_max"] = max(q["depth_max"], int(sq.get("depth_max", 0)))
        q["rejected_requests"] += int(sq.get("rejected_requests", 0))
        q["rejected_rows"] += int(sq.get("rejected_rows", 0))
    for stat in merged_requests.values():
        lat = stat["latency_s"]
        lat["mean"] = lat["total"] / stat["count"] if stat["count"] else 0.0
        if lat["min"] == float("inf"):
            lat["min"] = 0.0
    b = out["batches"]
    b["rows_mean"] = b["rows"] / b["count"] if b["count"] else 0.0
    c = out["cache"]
    lookups = c["hits"] + c["misses"]
    c["hit_rate"] = c["hits"] / lookups if lookups else 0.0
    out["requests"] = dict(sorted(merged_requests.items()))
    return out
