"""Anonymization-as-a-service: registry, batcher, cache, HTTP, metrics.

The paper's pipeline ends at a fitted release; this package is the layer
that *serves* one.  A :class:`~repro.serving.registry.ModelRegistry`
holds versioned, checksum-verified ``Anonymizer.save()`` artifacts with
an atomically-switched active pointer; a
:class:`~repro.serving.model.TransformModel` is the minimal
transform-time state loaded from it (no fit-time engine buffers); a
:class:`~repro.serving.batcher.CoalescingBatcher` merges concurrent
requests into single backend queries behind a
:class:`~repro.serving.cache.TransformCache`; and
:class:`~repro.serving.service.AnonymizationService` exposes it all over
a stdlib-only HTTP front end with
:class:`~repro.serving.metrics.ServingMetrics` observability.

The HTTP front end speaks persistent-connection HTTP/1.1 (keep-alive,
pipelining, bounded admission with typed 429 backpressure), and
:mod:`repro.serving.workers` scales it across pre-forked
``SO_REUSEPORT`` processes sharing one port.

Everything here preserves the library's bit-for-bit contract: a served
response equals ``Anonymizer.transform`` on the same rows, regardless of
how requests were coalesced, cached, which backend executed them, or
how many worker processes shared the port.
"""

from .batcher import CoalescingBatcher, OverloadedError
from .cache import TransformCache
from .http import ConnectionLimits, HttpClient, HttpError, http_json
from .metrics import ServingMetrics, merge_snapshots
from .model import MODEL_FORMAT_VERSION, TransformModel, read_model_artifact
from .registry import ModelRegistry, ModelRegistryError
from .service import AnonymizationService
from .workers import WorkerSupervisor, serve_workers

__all__ = [
    "AnonymizationService",
    "CoalescingBatcher",
    "ConnectionLimits",
    "HttpClient",
    "HttpError",
    "MODEL_FORMAT_VERSION",
    "ModelRegistry",
    "ModelRegistryError",
    "OverloadedError",
    "ServingMetrics",
    "TransformCache",
    "TransformModel",
    "WorkerSupervisor",
    "http_json",
    "merge_snapshots",
    "read_model_artifact",
    "serve_workers",
]
