"""Anonymization-as-a-service: registry, batcher, cache, HTTP, metrics.

The paper's pipeline ends at a fitted release; this package is the layer
that *serves* one.  A :class:`~repro.serving.registry.ModelRegistry`
holds versioned, checksum-verified ``Anonymizer.save()`` artifacts with
an atomically-switched active pointer; a
:class:`~repro.serving.model.TransformModel` is the minimal
transform-time state loaded from it (no fit-time engine buffers); a
:class:`~repro.serving.batcher.CoalescingBatcher` merges concurrent
requests into single backend queries behind a
:class:`~repro.serving.cache.TransformCache`; and
:class:`~repro.serving.service.AnonymizationService` exposes it all over
a stdlib-only HTTP front end with
:class:`~repro.serving.metrics.ServingMetrics` observability.

Everything here preserves the library's bit-for-bit contract: a served
response equals ``Anonymizer.transform`` on the same rows, regardless of
how requests were coalesced, cached, or which backend executed them.
"""

from .batcher import CoalescingBatcher
from .cache import TransformCache
from .http import HttpError, http_json
from .metrics import ServingMetrics
from .model import MODEL_FORMAT_VERSION, TransformModel, read_model_artifact
from .registry import ModelRegistry, ModelRegistryError
from .service import AnonymizationService

__all__ = [
    "AnonymizationService",
    "CoalescingBatcher",
    "HttpError",
    "MODEL_FORMAT_VERSION",
    "ModelRegistry",
    "ModelRegistryError",
    "ServingMetrics",
    "TransformCache",
    "TransformModel",
    "http_json",
    "read_model_artifact",
]
