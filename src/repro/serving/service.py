"""The anonymization service: registry-backed models behind an HTTP loop.

:class:`AnonymizationService` is the composition root of the serving
package.  It loads every active model from a
:class:`~repro.serving.registry.ModelRegistry` (memory-mapped by
default, so parallel workers share pages), fronts each with its own
:class:`~repro.serving.cache.TransformCache` and
:class:`~repro.serving.batcher.CoalescingBatcher`, and exposes the
result over the stdlib-only HTTP front end in
:mod:`repro.serving.http`:

========================  ======================================================
``GET  /healthz``          liveness + loaded model count
``GET  /metrics``          :class:`~repro.serving.metrics.ServingMetrics` snapshot
``GET  /v1/models``        registry listing + live model metadata
``POST /v1/models/<name>/activate``   hot-swap to ``{"version": ...}``
``POST /v1/models/<name>/rollback``   hot-swap back to the previous version
``POST /v1/transform``     anonymize ``{"model": ..., "records": {col: [...]}}``
``POST /v1/assign``        cluster ids only, same request shape
========================  ======================================================

Transform responses are bit-for-bit identical to calling
``Anonymizer.transform`` directly on the same rows — coalescing stacks
row-independent queries and the cache keys on exact encoded bytes, so
neither can change a result (the differential serving tests and the CI
smoke assert this end to end).  Activation and rollback swap the live
model between requests without dropping the listener: in-flight batches
finish against the model they were queued under.
"""

from __future__ import annotations

import asyncio
import signal
import time
from pathlib import Path

from ..backend import ComputeBackend
from ..core.validation import BatchSchemaError
from ..data.dataset import Microdata, SchemaError
from ..runtime.atomic import ArtifactError
from .batcher import CoalescingBatcher
from .cache import TransformCache
from .http import HttpError, Request, read_request, write_response
from .metrics import ServingMetrics
from .model import TransformModel
from .registry import ModelRegistry, ModelRegistryError


class _LiveModel:
    """One served model: its version, transform state, cache and batcher."""

    __slots__ = ("name", "version", "model", "cache", "batcher")

    def __init__(
        self,
        name: str,
        version: str,
        model: TransformModel,
        cache: TransformCache,
        batcher: CoalescingBatcher,
    ) -> None:
        self.name = name
        self.version = version
        self.model = model
        self.cache = cache
        self.batcher = batcher


class AnonymizationService:
    """Serve every active model of a registry over HTTP.

    Parameters
    ----------
    registry:
        A :class:`~repro.serving.registry.ModelRegistry` or its root
        directory.
    backend:
        Compute backend for the nearest-representative queries (any
        ``resolve_backend`` spec); purely an execution choice — responses
        are bit-for-bit identical under every backend.
    mmap_mode:
        Forwarded to the registry loads; the default ``"r"`` maps model
        arrays read-only so parallel workers share page-cache pages.
        ``None`` copies them into private memory instead.
    max_batch_rows, max_wait_ms:
        The coalescing policy (see
        :class:`~repro.serving.batcher.CoalescingBatcher`).
    cache_size:
        Per-model :class:`~repro.serving.cache.TransformCache` budget in
        rows; ``0`` disables caching (the serving benchmark's uncached
        leg).
    metrics:
        Optional shared :class:`~repro.serving.metrics.ServingMetrics`;
        one is created when omitted.
    """

    def __init__(
        self,
        registry: ModelRegistry | str | Path,
        *,
        backend: ComputeBackend | str | None = None,
        mmap_mode: str | None = "r",
        max_batch_rows: int = 4096,
        max_wait_ms: float = 2.0,
        cache_size: int = 4096,
        metrics: ServingMetrics | None = None,
    ) -> None:
        self.registry = (
            registry
            if isinstance(registry, ModelRegistry)
            else ModelRegistry(registry)
        )
        self.backend = backend
        self.mmap_mode = mmap_mode
        self.max_batch_rows = int(max_batch_rows)
        self.max_wait_ms = float(max_wait_ms)
        self.cache_size = int(cache_size)
        self.metrics = metrics if metrics is not None else ServingMetrics()
        self._models: dict[str, _LiveModel] = {}

    # -- model lifecycle -----------------------------------------------------------

    def load_models(self) -> list[str]:
        """(Re)load every registry model with an active version; return names."""
        for name in self.registry.names():
            if self.registry.active_version(name) is not None:
                self.reload_model(name)
        return sorted(self._models)

    def reload_model(self, name: str) -> _LiveModel:
        """Load ``name``'s active version and swap it live.

        The fresh model gets a fresh cache (entries keyed on the old
        version's encoding must not answer for the new one) and a fresh
        batcher; the swap is a single dict assignment on the event-loop
        thread, so requests observe either the old model or the new one,
        never a mixture.
        """
        version = self.registry.active_version(name)
        if version is None:
            raise ModelRegistryError(
                f"model {name!r} has no active version to load"
            )
        model = self.registry.load(
            name, version, backend=self.backend, mmap_mode=self.mmap_mode
        )
        cache = TransformCache(max_size=self.cache_size)
        batcher = CoalescingBatcher(
            model,
            max_batch_rows=self.max_batch_rows,
            max_wait_ms=self.max_wait_ms,
            cache=cache,
            metrics=self.metrics,
        )
        live = _LiveModel(name, version, model, cache, batcher)
        self._models[name] = live
        return live

    def _resolve_model(self, name: str | None) -> _LiveModel:
        """The live model a request addresses (defaulting when unambiguous)."""
        if name is None:
            if len(self._models) == 1:
                return next(iter(self._models.values()))
            raise HttpError(
                422,
                f"request must name a model (loaded: {sorted(self._models)})",
            )
        live = self._models.get(name)
        if live is None:
            raise HttpError(
                404,
                f"no model {name!r} is loaded (loaded: {sorted(self._models)})",
            )
        return live

    # -- request handling ----------------------------------------------------------

    async def handle(self, request: Request) -> tuple[str, int, dict, int]:
        """Route one request; return ``(endpoint, status, payload, rows)``."""
        path = request.path.rstrip("/") or "/"
        try:
            if path == "/healthz":
                return "healthz", 200, self._healthz(), 0
            if path == "/metrics":
                return "metrics", 200, self.metrics.snapshot(), 0
            if path == "/v1/models":
                self._require_method(request, "GET")
                return "models", 200, self._list_models(), 0
            if path.startswith("/v1/models/"):
                return self._model_action(request, path)
            if path == "/v1/transform":
                self._require_method(request, "POST")
                payload, rows = await self._transform(request, assign_only=False)
                return "transform", 200, payload, rows
            if path == "/v1/assign":
                self._require_method(request, "POST")
                payload, rows = await self._transform(request, assign_only=True)
                return "assign", 200, payload, rows
            raise HttpError(404, f"no such endpoint {request.path!r}")
        except (BatchSchemaError, SchemaError) as exc:
            raise HttpError(422, str(exc))
        except ModelRegistryError as exc:
            raise HttpError(404, str(exc))
        except ArtifactError as exc:
            raise HttpError(503, str(exc))

    @staticmethod
    def _require_method(request: Request, method: str) -> None:
        """405 unless the request uses ``method``."""
        if request.method != method:
            raise HttpError(
                405, f"{request.path} requires {method}, got {request.method}"
            )

    def _healthz(self) -> dict:
        """Liveness payload."""
        return {"status": "ok", "models": sorted(self._models)}

    def _list_models(self) -> dict:
        """Registry listing enriched with live model metadata."""
        listing = self.registry.describe()
        for name, entry in listing.items():
            live = self._models.get(name)
            if live is not None:
                entry["loaded"] = live.version
                entry["model"] = live.model.describe()
                entry["cache_size"] = len(live.cache)
        return {"models": listing}

    def _model_action(
        self, request: Request, path: str
    ) -> tuple[str, int, dict, int]:
        """``/v1/models/<name>/activate`` and ``.../rollback``."""
        parts = path.split("/")
        if len(parts) != 5:
            raise HttpError(404, f"no such endpoint {request.path!r}")
        _, _, _, name, action = parts
        self._require_method(request, "POST")
        if action == "activate":
            version = request.json().get("version")
            if not isinstance(version, str):
                raise HttpError(
                    422, 'activate requires a JSON body {"version": "<v>"}'
                )
            self.registry.activate(name, version)
        elif action == "rollback":
            version = self.registry.rollback(name)
        else:
            raise HttpError(404, f"no such model action {action!r}")
        live = self.reload_model(name)
        return (
            action,
            200,
            {"model": name, "active": live.version},
            0,
        )

    async def _transform(
        self, request: Request, *, assign_only: bool
    ) -> tuple[dict, int]:
        """Shared body of ``/v1/transform`` and ``/v1/assign``."""
        payload = request.json()
        records = payload.get("records")
        if not isinstance(records, dict) or not records:
            raise HttpError(
                422,
                'request must carry {"records": {"<column>": [values...]}}',
            )
        live = self._resolve_model(payload.get("model"))
        model = live.model
        schema = model.batch_schema(available=tuple(records))
        batch = Microdata({s.name: records[s.name] for s in schema}, schema)
        encoded = model.encode_batch(batch)
        assignment = await live.batcher.assign(encoded)
        n = int(len(batch))
        out: dict = {
            "model": live.name,
            "version": live.version,
            "n_records": n,
            "assignments": assignment.tolist(),
        }
        if not assign_only:
            release = model.apply_assignment(batch, assignment)
            out["records"] = {
                name: release.labels(name).tolist()
                for name in release.attribute_names
            }
        return out, n

    # -- the connection loop -------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Serve one connection: parse, route, answer, close."""
        started = time.perf_counter()
        endpoint, status, rows = "other", 500, 0
        try:
            try:
                request = await read_request(reader)
                if request is None:
                    return
                endpoint, status, payload, rows = await self.handle(request)
            except HttpError as exc:
                status = exc.status
                payload = {"error": exc.message}
            except Exception as exc:  # unexpected: answer 500, keep serving
                status = 500
                payload = {"error": f"{exc.__class__.__name__}: {exc}"}
            await write_response(writer, status, payload)
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            self.metrics.record_request(
                endpoint,
                time.perf_counter() - started,
                rows=rows,
                error=status >= 400,
            )
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - peer reset
                pass

    async def serve(
        self,
        host: str = "127.0.0.1",
        port: int = 8765,
        *,
        quiet: bool = False,
    ) -> None:
        """Run the listener until SIGTERM/SIGINT, then shut down cleanly.

        ``port=0`` binds an ephemeral port; the announcement line (and
        the smoke harness parsing it) reports the bound one.  Shutdown
        closes the listener, drains pending batches, and returns — no
        traceback, which the CI smoke asserts.
        """
        if not self._models:
            self.load_models()
        server = await asyncio.start_server(self._handle_connection, host, port)
        bound = server.sockets[0].getsockname()[1]
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        installed: list[signal.Signals] = []
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, stop.set)
                installed.append(sig)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
        if not quiet:
            print(
                f"serving {len(self._models)} model(s) on http://{host}:{bound}",
                flush=True,
            )
        try:
            await stop.wait()
        finally:
            for sig in installed:
                loop.remove_signal_handler(sig)
            server.close()
            await server.wait_closed()
            for live in self._models.values():
                await live.batcher.flush()
        if not quiet:
            print("serving stopped", flush=True)

    def run(
        self, host: str = "127.0.0.1", port: int = 8765, *, quiet: bool = False
    ) -> None:
        """Blocking wrapper around :meth:`serve` (the CLI entry point)."""
        try:
            asyncio.run(self.serve(host, port, quiet=quiet))
        except KeyboardInterrupt:  # pragma: no cover - ^C without handler
            pass
