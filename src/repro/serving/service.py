"""The anonymization service: registry-backed models behind an HTTP loop.

:class:`AnonymizationService` is the composition root of the serving
package.  It loads every active model from a
:class:`~repro.serving.registry.ModelRegistry` (memory-mapped by
default, so parallel workers share pages), fronts each with its own
:class:`~repro.serving.cache.TransformCache` and
:class:`~repro.serving.batcher.CoalescingBatcher`, and exposes the
result over the persistent-connection HTTP front end in
:mod:`repro.serving.http`:

========================  ======================================================
``GET  /healthz``          liveness + loaded model count
``GET  /metrics``          :class:`~repro.serving.metrics.ServingMetrics` snapshot
``GET  /v1/models``        registry listing + live model metadata
``POST /v1/models/<name>/activate``   hot-swap to ``{"version": ...}``
``POST /v1/models/<name>/rollback``   hot-swap back to the previous version
``POST /v1/transform``     anonymize ``{"model": ..., "records": {col: [...]}}``
``POST /v1/assign``        cluster ids only, same request shape
========================  ======================================================

Transform responses are bit-for-bit identical to calling
``Anonymizer.transform`` directly on the same rows — coalescing stacks
row-independent queries, the cache keys on exact encoded bytes, and the
hot-swap warm-up only ever stores results computed by the *new* model,
so none of them can change a result (the differential serving tests and
the CI smoke assert this end to end, across keep-alive, pipelined and
multi-worker topologies).  Activation and rollback swap the live model
between requests without dropping the listener: in-flight batches
finish against the model they were queued under, and the hottest cached
rows are replayed into the new model's cache before the swap completes.

Under overload the service degrades loudly instead of slowly: beyond
the bounded admission queue, requests get a typed ``429`` JSON error
with ``Retry-After`` (see
:class:`~repro.serving.batcher.OverloadedError`), keeping queue depth —
and therefore latency — bounded.

For multi-process topologies (``serve --workers N``, see
:mod:`repro.serving.workers`) each worker runs one service instance on
a shared port; ``metrics_dir`` makes every worker persist per-worker
snapshot files that ``/metrics`` merges at scrape time, and
``watch_registry_s`` makes workers poll the registry's ACTIVE pointers
so a hot swap performed through any worker propagates to all of them.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import socket
import time
from pathlib import Path

import numpy as np

from ..backend import ComputeBackend
from ..core.validation import BatchSchemaError
from ..data.dataset import Microdata, SchemaError
from ..runtime.atomic import ArtifactError
from .batcher import CoalescingBatcher, OverloadedError
from .cache import TransformCache
from .http import (
    ConnectionLimits,
    HttpError,
    Request,
    run_connection,
)
from .metrics import ServingMetrics, merge_snapshots
from .model import TransformModel
from .registry import ModelRegistry, ModelRegistryError


class _LiveModel:
    """One served model: its version, transform state, cache and batcher."""

    __slots__ = ("name", "version", "model", "cache", "batcher")

    def __init__(
        self,
        name: str,
        version: str,
        model: TransformModel,
        cache: TransformCache,
        batcher: CoalescingBatcher,
    ) -> None:
        self.name = name
        self.version = version
        self.model = model
        self.cache = cache
        self.batcher = batcher


class AnonymizationService:
    """Serve every active model of a registry over HTTP.

    Parameters
    ----------
    registry:
        A :class:`~repro.serving.registry.ModelRegistry` or its root
        directory.
    backend:
        Compute backend for the nearest-representative queries (any
        ``resolve_backend`` spec); purely an execution choice — responses
        are bit-for-bit identical under every backend.
    mmap_mode:
        Forwarded to the registry loads; the default ``"r"`` maps model
        arrays read-only so parallel workers share page-cache pages.
        ``None`` copies them into private memory instead.
    max_batch_rows, max_wait_ms:
        The coalescing policy (see
        :class:`~repro.serving.batcher.CoalescingBatcher`).
    max_queue_rows:
        Admission bound per model: requests that would push the pending
        backlog past this many rows are answered ``429`` with
        ``Retry-After`` instead of queueing (``0`` = unbounded, the
        pre-backpressure behavior).
    cache_size:
        Per-model :class:`~repro.serving.cache.TransformCache` budget in
        rows; ``0`` disables caching (the serving benchmark's uncached
        leg).
    warmup_rows:
        On a hot swap, replay up to this many of the old cache's hottest
        encoded rows through the new model to pre-heat its cache
        (``0`` disables warm-up).
    idle_timeout_s, max_requests_per_connection, pipeline_depth:
        Per-connection limits (see
        :class:`~repro.serving.http.ConnectionLimits`).
    metrics_dir:
        Multi-worker metrics directory: when set, this worker persists
        its snapshot to ``metrics-<pid>.json`` in it after every request
        and ``/metrics`` merges every worker's file at scrape time.
    watch_registry_s:
        Poll the registry's ACTIVE pointers this often (seconds) and hot
        swap on change — how sibling workers observe an activate or
        rollback performed through any one of them.  ``0`` disables.
    metrics:
        Optional shared :class:`~repro.serving.metrics.ServingMetrics`;
        one is created when omitted.
    """

    def __init__(
        self,
        registry: ModelRegistry | str | Path,
        *,
        backend: ComputeBackend | str | None = None,
        mmap_mode: str | None = "r",
        max_batch_rows: int = 4096,
        max_wait_ms: float = 2.0,
        max_queue_rows: int = 0,
        cache_size: int = 4096,
        warmup_rows: int = 4096,
        idle_timeout_s: float = 60.0,
        max_requests_per_connection: int = 0,
        pipeline_depth: int = 16,
        metrics_dir: str | Path | None = None,
        watch_registry_s: float = 0.0,
        metrics: ServingMetrics | None = None,
    ) -> None:
        self.registry = (
            registry
            if isinstance(registry, ModelRegistry)
            else ModelRegistry(registry)
        )
        self.backend = backend
        self.mmap_mode = mmap_mode
        self.max_batch_rows = int(max_batch_rows)
        self.max_wait_ms = float(max_wait_ms)
        self.max_queue_rows = int(max_queue_rows)
        self.cache_size = int(cache_size)
        self.warmup_rows = int(warmup_rows)
        self.limits = ConnectionLimits(
            idle_timeout_s=idle_timeout_s,
            max_requests=max_requests_per_connection,
            pipeline_depth=pipeline_depth,
        )
        self.metrics_dir = Path(metrics_dir) if metrics_dir is not None else None
        self.watch_registry_s = float(watch_registry_s)
        self.metrics = metrics if metrics is not None else ServingMetrics()
        self._models: dict[str, _LiveModel] = {}
        self._draining: asyncio.Event | None = None
        self._conn_tasks: set[asyncio.Task] = set()

    # -- model lifecycle -----------------------------------------------------------

    def load_models(self) -> list[str]:
        """(Re)load every registry model with an active version; return names."""
        for name in self.registry.names():
            if self.registry.active_version(name) is not None:
                self.reload_model(name)
        return sorted(self._models)

    def reload_model(self, name: str) -> _LiveModel:
        """Load ``name``'s active version and swap it live.

        The fresh model gets a fresh cache (entries keyed on the old
        version's encoding must not answer for the new one) and a fresh
        batcher.  Before the swap completes, the old cache's hottest
        encoded rows are replayed through the *new* model
        (:meth:`_warm_cache`) so the post-swap hit rate does not fall off
        a cliff; the stored results are computed by the new model, so the
        bit-for-bit contract is untouched.  The swap itself is a single
        dict assignment on the event-loop thread, so requests observe
        either the old model or the new one, never a mixture.
        """
        version = self.registry.active_version(name)
        if version is None:
            raise ModelRegistryError(
                f"model {name!r} has no active version to load"
            )
        model = self.registry.load(
            name, version, backend=self.backend, mmap_mode=self.mmap_mode
        )
        cache = TransformCache(max_size=self.cache_size)
        old = self._models.get(name)
        if old is not None:
            self._warm_cache(old, model, cache)
        batcher = CoalescingBatcher(
            model,
            max_batch_rows=self.max_batch_rows,
            max_wait_ms=self.max_wait_ms,
            max_queue_rows=self.max_queue_rows,
            cache=cache,
            metrics=self.metrics,
        )
        live = _LiveModel(name, version, model, cache, batcher)
        self._models[name] = live
        return live

    def _warm_cache(
        self, old: _LiveModel, model: TransformModel, cache: TransformCache
    ) -> int:
        """Replay the old cache's hottest keys into the new model's cache.

        Strictly best-effort: keys whose byte width does not match the
        new model's encoding (a schema-changing republish) are skipped,
        and any failure leaves the new cache simply cold.  Returns the
        number of rows warmed.
        """
        if not cache.enabled or self.warmup_rows <= 0:
            return 0
        keys = old.cache.hottest(self.warmup_rows)
        if not keys:
            return 0
        width = int(model.encoded_representatives.shape[1])
        row_bytes = width * np.dtype(np.float64).itemsize
        keys = [key for key in keys if len(key) == row_bytes]
        if not keys:
            return 0
        try:
            rows = np.frombuffer(b"".join(keys), dtype=np.float64)
            rows = rows.reshape(len(keys), width)
            assignment = model.assign_encoded(rows)
            cache.store_rows(rows, assignment)
        except Exception:  # pragma: no cover - warm-up must never block a swap
            return 0
        return len(keys)

    def _resolve_model(self, name: str | None) -> _LiveModel:
        """The live model a request addresses (defaulting when unambiguous)."""
        if name is None:
            if len(self._models) == 1:
                return next(iter(self._models.values()))
            raise HttpError(
                422,
                f"request must name a model (loaded: {sorted(self._models)})",
            )
        live = self._models.get(name)
        if live is None:
            raise HttpError(
                404,
                f"no model {name!r} is loaded (loaded: {sorted(self._models)})",
            )
        return live

    # -- request handling ----------------------------------------------------------

    async def handle(self, request: Request) -> tuple[str, int, dict, int]:
        """Route one request; return ``(endpoint, status, payload, rows)``."""
        path = request.path.rstrip("/") or "/"
        try:
            if path == "/healthz":
                return "healthz", 200, self._healthz(), 0
            if path == "/metrics":
                return "metrics", 200, self._metrics_payload(), 0
            if path == "/v1/models":
                self._require_method(request, "GET")
                return "models", 200, self._list_models(), 0
            if path.startswith("/v1/models/"):
                return self._model_action(request, path)
            if path == "/v1/transform":
                self._require_method(request, "POST")
                payload, rows = await self._transform(request, assign_only=False)
                return "transform", 200, payload, rows
            if path == "/v1/assign":
                self._require_method(request, "POST")
                payload, rows = await self._transform(request, assign_only=True)
                return "assign", 200, payload, rows
            raise HttpError(404, f"no such endpoint {request.path!r}")
        except (BatchSchemaError, SchemaError) as exc:
            raise HttpError(422, str(exc))
        except ModelRegistryError as exc:
            raise HttpError(404, str(exc))
        except ArtifactError as exc:
            raise HttpError(503, str(exc))
        except OverloadedError as exc:
            raise HttpError(
                429,
                str(exc),
                error_type="overloaded",
                retry_after_s=exc.retry_after_s,
            )

    @staticmethod
    def _require_method(request: Request, method: str) -> None:
        """405 unless the request uses ``method``."""
        if request.method != method:
            raise HttpError(
                405, f"{request.path} requires {method}, got {request.method}"
            )

    def _healthz(self) -> dict:
        """Liveness payload."""
        return {"status": "ok", "models": sorted(self._models), "pid": os.getpid()}

    def _metrics_payload(self) -> dict:
        """This worker's snapshot, or the merged fleet view in worker mode."""
        if self.metrics_dir is None:
            return self.metrics.snapshot()
        # Refresh this worker's file first so the merge includes the
        # request counts up to (but excluding) this very scrape.
        self.metrics.persist(self._metrics_path())
        snapshots = []
        for path in sorted(self.metrics_dir.glob("metrics-*.json")):
            try:
                snapshots.append(json.loads(path.read_text()))
            except (OSError, ValueError):  # pragma: no cover - racing worker
                continue
        return merge_snapshots(snapshots)

    def _metrics_path(self) -> Path:
        return self.metrics_dir / f"metrics-{os.getpid()}.json"

    def _list_models(self) -> dict:
        """Registry listing enriched with live model metadata."""
        listing = self.registry.describe()
        for name, entry in listing.items():
            live = self._models.get(name)
            if live is not None:
                entry["loaded"] = live.version
                entry["model"] = live.model.describe()
                entry["cache_size"] = len(live.cache)
        return {"models": listing}

    def _model_action(
        self, request: Request, path: str
    ) -> tuple[str, int, dict, int]:
        """``/v1/models/<name>/activate`` and ``.../rollback``."""
        parts = path.split("/")
        if len(parts) != 5:
            raise HttpError(404, f"no such endpoint {request.path!r}")
        _, _, _, name, action = parts
        self._require_method(request, "POST")
        if action == "activate":
            version = request.json().get("version")
            if not isinstance(version, str):
                raise HttpError(
                    422, 'activate requires a JSON body {"version": "<v>"}'
                )
            self.registry.activate(name, version)
        elif action == "rollback":
            version = self.registry.rollback(name)
        else:
            raise HttpError(404, f"no such model action {action!r}")
        live = self.reload_model(name)
        return (
            action,
            200,
            {"model": name, "active": live.version},
            0,
        )

    async def _transform(
        self, request: Request, *, assign_only: bool
    ) -> tuple[dict, int]:
        """Shared body of ``/v1/transform`` and ``/v1/assign``."""
        payload = request.json()
        records = payload.get("records")
        if not isinstance(records, dict) or not records:
            raise HttpError(
                422,
                'request must carry {"records": {"<column>": [values...]}}',
            )
        live = self._resolve_model(payload.get("model"))
        model = live.model
        schema = model.batch_schema(available=tuple(records))
        batch = Microdata({s.name: records[s.name] for s in schema}, schema)
        encoded = model.encode_batch(batch)
        assignment = await live.batcher.assign(encoded)
        n = int(len(batch))
        out: dict = {
            "model": live.name,
            "version": live.version,
            "n_records": n,
            "assignments": assignment.tolist(),
        }
        if not assign_only:
            release = model.apply_assignment(batch, assignment)
            out["records"] = {
                name: release.labels(name).tolist()
                for name in release.attribute_names
            }
        return out, n

    # -- the connection loop -------------------------------------------------------

    async def _respond(
        self, request: Request
    ) -> tuple[int, dict, dict[str, str] | None]:
        """Route one request to ``(status, payload, headers)``; never raises."""
        started = time.perf_counter()
        endpoint, status, rows, headers = "other", 500, 0, None
        try:
            try:
                endpoint, status, payload, rows = await self.handle(request)
            except HttpError as exc:
                status = exc.status
                payload = exc.payload()
                headers = exc.headers()
            except asyncio.CancelledError:
                raise
            except Exception as exc:  # unexpected: answer 500, keep serving
                status = 500
                payload = {"error": f"{exc.__class__.__name__}: {exc}"}
        finally:
            self.metrics.record_request(
                endpoint,
                time.perf_counter() - started,
                rows=rows,
                error=status >= 400,
            )
            if self.metrics_dir is not None:
                try:
                    self.metrics.persist(self._metrics_path())
                except OSError:  # pragma: no cover - metrics dir vanished
                    pass
        return status, payload, headers

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Serve one persistent connection: parse ahead, answer in order."""
        self.metrics.record_connection()
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        try:
            await run_connection(
                reader,
                writer,
                self._respond,
                self.limits,
                draining=self._draining,
            )
        except (ConnectionError, OSError):
            pass
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - peer reset
                pass

    async def _watch_registry(self) -> None:
        """Poll ACTIVE pointers; hot swap when another worker moved one."""
        while True:
            await asyncio.sleep(self.watch_registry_s)
            try:
                names = self.registry.names()
            except OSError:  # pragma: no cover - registry dir vanished
                continue
            for name in names:
                try:
                    active = self.registry.active_version(name)
                except (OSError, ValueError):  # pragma: no cover - mid-write
                    continue
                if active is None:
                    continue
                live = self._models.get(name)
                if live is None or live.version != active:
                    try:
                        self.reload_model(name)
                    except (ModelRegistryError, ArtifactError, OSError):
                        # A torn publish or concurrent prune: keep the
                        # current model and retry next tick.
                        continue

    async def serve(
        self,
        host: str = "127.0.0.1",
        port: int = 8765,
        *,
        sock: socket.socket | None = None,
        quiet: bool = False,
        drain_timeout_s: float = 10.0,
        ready_callback=None,
    ) -> None:
        """Run the listener until SIGTERM/SIGINT, then shut down cleanly.

        ``port=0`` binds an ephemeral port; the announcement line (and
        the smoke harness parsing it) reports the bound one.  ``sock``
        serves an externally prepared listening socket instead (the
        multi-worker topology passes each worker its ``SO_REUSEPORT``
        listener or the parent's inherited one).  Shutdown is a graceful
        drain: stop accepting, let every in-flight response finish (its
        ``Connection: close`` tells the client this session is over),
        close idle keep-alive connections immediately, force-close
        stragglers after ``drain_timeout_s``, then flush pending batches
        — no traceback, which the CI smoke asserts.
        """
        if not self._models:
            self.load_models()
        self._draining = asyncio.Event()
        if sock is not None:
            server = await asyncio.start_server(self._handle_connection, sock=sock)
        else:
            server = await asyncio.start_server(
                self._handle_connection, host, port
            )
        bound = server.sockets[0].getsockname()[1]
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        installed: list[signal.Signals] = []
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, stop.set)
                installed.append(sig)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
        watcher = (
            asyncio.create_task(self._watch_registry())
            if self.watch_registry_s > 0
            else None
        )
        if not quiet:
            print(
                f"serving {len(self._models)} model(s) on http://{host}:{bound}",
                flush=True,
            )
        if ready_callback is not None:
            ready_callback(bound, sorted(self._models))
        try:
            await stop.wait()
        finally:
            if watcher is not None:
                watcher.cancel()
            self._draining.set()
            server.close()
            await server.wait_closed()
            if self._conn_tasks:
                # Idle connections notice the drain event immediately;
                # busy ones finish their in-flight responses first.
                done, pending = await asyncio.wait(
                    set(self._conn_tasks), timeout=drain_timeout_s
                )
                for task in pending:  # pragma: no cover - pathological client
                    task.cancel()
            for live in self._models.values():
                await live.batcher.flush()
            if self.metrics_dir is not None:
                try:
                    self.metrics.persist(self._metrics_path())
                except OSError:  # pragma: no cover
                    pass
        if not quiet:
            print("serving stopped", flush=True)

    def run(
        self,
        host: str = "127.0.0.1",
        port: int = 8765,
        *,
        sock: socket.socket | None = None,
        quiet: bool = False,
        ready_callback=None,
    ) -> None:
        """Blocking wrapper around :meth:`serve` (the CLI entry point)."""
        try:
            asyncio.run(
                self.serve(
                    host,
                    port,
                    sock=sock,
                    quiet=quiet,
                    ready_callback=ready_callback,
                )
            )
        except KeyboardInterrupt:  # pragma: no cover - ^C without handler
            pass
