"""Pre-forked multi-worker serving topology on one shared port.

One Python process tops out at one core of useful work for the serving
path (the GIL serializes the JSON/HTTP layer even when the numpy kernel
releases it), so horizontal scale on a single host means **processes**.
:class:`WorkerSupervisor` pre-forks ``N`` workers, each running its own
:class:`~repro.serving.service.AnonymizationService` event loop on the
*same* ``host:port``:

* **SO_REUSEPORT** (the default where the platform offers it): every
  worker binds its own listening socket with ``SO_REUSEPORT`` and the
  kernel load-balances incoming connections across them — no accept
  lock, no parent in the data path.  When the requested port is ``0``
  the parent first binds a placeholder ``SO_REUSEPORT`` socket to
  resolve a concrete ephemeral port, and keeps it *bound but never
  listening* for the supervisor's lifetime so the port cannot be
  reassigned between forks (a bound-only TCP socket receives no
  connections — Linux only balances across *listening* sockets).
* **inherited-FD fallback**: platforms without usable ``SO_REUSEPORT``
  get the classic pre-fork shape — the parent binds one listening
  socket and every forked worker accepts on the inherited FD.

Workers inherit nothing mutable: each builds its own service after the
fork, loading the ACTIVE models with ``mmap_mode="r"`` so the big
representative arrays land in shared page cache rather than N private
copies.  Readiness is a pipe handshake (each worker reports its loaded
models once its listener is up; the parent prints the announce line
only when the whole fleet accepts), shutdown is signal fan-out (SIGTERM
or SIGINT to the parent forwards to every worker, which drains its
keep-alive connections and exits 0), and the supervisor's exit code is
0 only if every worker's was.

Cross-worker coherence uses the registry and the filesystem, not shared
memory: every worker polls the registry's ACTIVE pointers
(``watch_registry_s``) so an activate/rollback served by one worker
propagates to all, and every worker persists per-PID metrics snapshots
into a shared ``metrics_dir`` that any worker's ``/metrics`` merges at
scrape time (see :func:`~repro.serving.metrics.merge_snapshots`).
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import socket
import sys
import tempfile
from pathlib import Path

from .registry import ModelRegistry

#: How long (seconds) the parent waits for each worker's readiness
#: handshake before declaring the fleet failed.
READY_TIMEOUT_S = 60.0


def reuseport_available() -> bool:
    """Whether this platform supports ``SO_REUSEPORT`` load balancing.

    The attribute existing is not enough (some kernels expose the
    constant but reject the option), so probe with a real bind.
    """
    if not hasattr(socket, "SO_REUSEPORT"):
        return False
    try:
        with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as probe:
            probe.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
            probe.bind(("127.0.0.1", 0))
    except OSError:
        return False
    return True


def _reuseport_listener(host: str, port: int) -> socket.socket:
    """A fresh listening socket on ``host:port`` with ``SO_REUSEPORT``."""
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        sock.bind((host, port))
        sock.listen(128)
        sock.setblocking(False)
    except OSError:
        sock.close()
        raise
    return sock


def _worker_main(
    registry_root: str,
    host: str,
    port: int,
    inherited: socket.socket | None,
    service_kwargs: dict,
    conn,
) -> None:
    """Entry point of one forked worker: build a service, serve, exit 0.

    Runs *after* the fork, so the service (event loop, mmapped models,
    caches) is built fresh in this process.  ``inherited`` is the
    parent-bound listener in fallback mode; in ``SO_REUSEPORT`` mode the
    worker binds its own.  The first (and only) pipe message reports
    either readiness (with the loaded model names) or the startup error.
    """
    from .service import AnonymizationService

    try:
        sock = (
            inherited
            if inherited is not None
            else _reuseport_listener(host, port)
        )
        service = AnonymizationService(registry_root, **service_kwargs)

        def ready(bound: int, models: list[str]) -> None:
            conn.send(
                {
                    "ready": True,
                    "pid": os.getpid(),
                    "port": bound,
                    "models": models,
                }
            )
            conn.close()

        service.run(host, port, sock=sock, quiet=True, ready_callback=ready)
    except BaseException as exc:  # noqa: BLE001 - report, then re-raise
        try:
            conn.send(
                {"ready": False, "error": f"{type(exc).__name__}: {exc}"}
            )
            conn.close()
        except OSError:
            pass
        raise


class WorkerSupervisor:
    """Fork, watch and drain ``workers`` serving processes on one port.

    Parameters
    ----------
    registry:
        Registry root path (or :class:`ModelRegistry`; only its root is
        shipped to workers — each opens its own handle after the fork).
    host, port:
        Listening address shared by the fleet; ``port=0`` resolves to a
        concrete ephemeral port before the first fork.
    workers:
        Number of serving processes (at least 1; the CLI uses the
        in-process single path for 1 and this supervisor for 2+).
    service_kwargs:
        Forwarded to each worker's
        :class:`~repro.serving.service.AnonymizationService`.  The
        supervisor fills in ``metrics_dir`` (a fresh temp dir unless the
        caller chose one) and a default ``watch_registry_s`` of 0.25 s
        so hot swaps propagate across the fleet.
    reuseport:
        ``None`` probes the platform; ``False`` forces the inherited-FD
        fallback (exercised by the multi-worker tests so the fallback
        path does not rot on Linux CI).
    """

    def __init__(
        self,
        registry: ModelRegistry | str | Path,
        host: str = "127.0.0.1",
        port: int = 8765,
        workers: int = 2,
        *,
        service_kwargs: dict | None = None,
        reuseport: bool | None = None,
        quiet: bool = False,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        root = (
            registry.root if isinstance(registry, ModelRegistry) else registry
        )
        self.registry_root = str(root)
        self.host = host
        self.port = int(port)
        self.workers = int(workers)
        self.quiet = quiet
        self.reuseport = (
            reuseport_available() if reuseport is None else bool(reuseport)
        )
        kwargs = dict(service_kwargs or {})
        self._owns_metrics_dir = kwargs.get("metrics_dir") is None
        if self._owns_metrics_dir:
            kwargs["metrics_dir"] = None  # filled per-run
        kwargs.setdefault("watch_registry_s", 0.25)
        self.service_kwargs = kwargs
        self._procs: list[multiprocessing.Process] = []

    def run(self) -> int:
        """Fork the fleet, print the announce, wait; return the exit code."""
        ctx = multiprocessing.get_context("fork")
        kwargs = dict(self.service_kwargs)
        metrics_tmp: tempfile.TemporaryDirectory | None = None
        if self._owns_metrics_dir:
            metrics_tmp = tempfile.TemporaryDirectory(
                prefix="repro-serving-metrics-"
            )
            kwargs["metrics_dir"] = metrics_tmp.name

        placeholder: socket.socket | None = None
        shared: socket.socket | None = None
        try:
            if self.reuseport:
                # Resolve the port before forking and hold it (bound,
                # never listening) so no other process can claim it
                # between worker binds.
                placeholder = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
                placeholder.setsockopt(
                    socket.SOL_SOCKET, socket.SO_REUSEADDR, 1
                )
                placeholder.setsockopt(
                    socket.SOL_SOCKET, socket.SO_REUSEPORT, 1
                )
                placeholder.bind((self.host, self.port))
                port = placeholder.getsockname()[1]
            else:
                shared = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
                shared.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
                shared.bind((self.host, self.port))
                shared.listen(128)
                shared.setblocking(False)
                port = shared.getsockname()[1]

            pipes = []
            for _ in range(self.workers):
                parent_conn, child_conn = ctx.Pipe(duplex=False)
                proc = ctx.Process(
                    target=_worker_main,
                    args=(
                        self.registry_root,
                        self.host,
                        port,
                        shared,
                        kwargs,
                        child_conn,
                    ),
                )
                proc.start()
                child_conn.close()
                self._procs.append(proc)
                pipes.append(parent_conn)
            if shared is not None:
                # The children's inherited copies keep the listener
                # alive; the parent stays out of the accept path.
                shared.close()
                shared = None

            models = self._await_ready(pipes)
            if models is None:
                self._terminate_all()
                self._join_all()
                return 2

            if not self.quiet:
                mode = "reuseport" if self.reuseport else "inherited-fd"
                print(
                    f"serving {len(models)} model(s) on "
                    f"http://{self.host}:{port}",
                    flush=True,
                )
                print(
                    f"workers: {self.workers} ({mode}), pids "
                    f"{[proc.pid for proc in self._procs]}",
                    flush=True,
                )

            self._install_forwarding()
            code = self._join_all()
            if not self.quiet:
                print("serving stopped", flush=True)
            return code
        finally:
            if placeholder is not None:
                placeholder.close()
            if shared is not None:
                shared.close()
            if metrics_tmp is not None:
                metrics_tmp.cleanup()

    # -- internals -------------------------------------------------------------------

    def _await_ready(self, pipes) -> list[str] | None:
        """Collect every worker's handshake; model names, or None on failure."""
        models: list[str] | None = None
        for proc, conn in zip(self._procs, pipes):
            try:
                if not conn.poll(READY_TIMEOUT_S):
                    print(
                        f"worker {proc.pid} did not become ready within "
                        f"{READY_TIMEOUT_S:.0f}s",
                        file=sys.stderr,
                        flush=True,
                    )
                    return None
                message = conn.recv()
            except (EOFError, OSError):
                print(
                    f"worker {proc.pid} exited before becoming ready",
                    file=sys.stderr,
                    flush=True,
                )
                return None
            finally:
                conn.close()
            if not message.get("ready"):
                print(
                    f"worker {proc.pid} failed to start: "
                    f"{message.get('error', 'unknown error')}",
                    file=sys.stderr,
                    flush=True,
                )
                return None
            models = message["models"]
        return models if models is not None else []

    def _install_forwarding(self) -> None:
        """Forward SIGTERM/SIGINT to every worker (idempotent per signal)."""

        def forward(signum, frame):  # noqa: ARG001 - signal signature
            for proc in self._procs:
                if proc.is_alive() and proc.pid:
                    try:
                        os.kill(proc.pid, signum)
                    except ProcessLookupError:
                        pass

        for sig in (signal.SIGTERM, signal.SIGINT):
            signal.signal(sig, forward)

    def _terminate_all(self) -> None:
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()

    def _join_all(self) -> int:
        """Join every worker; the fleet's exit code is the worst worker's."""
        code = 0
        for proc in self._procs:
            while True:
                try:
                    proc.join()
                    break
                except KeyboardInterrupt:
                    # The forwarding handler already relayed the signal;
                    # keep waiting for the drain to finish.
                    continue
            worker_code = proc.exitcode or 0
            if worker_code in (-signal.SIGTERM, -signal.SIGINT):
                # Died to the very signal we forwarded before its
                # handler was up: treat as a clean stop.
                worker_code = 0
            code = max(code, abs(worker_code))
        return code


def serve_workers(
    registry: ModelRegistry | str | Path,
    host: str = "127.0.0.1",
    port: int = 8765,
    workers: int = 2,
    *,
    service_kwargs: dict | None = None,
    reuseport: bool | None = None,
    quiet: bool = False,
) -> int:
    """Run a :class:`WorkerSupervisor` to completion (the CLI entry point)."""
    return WorkerSupervisor(
        registry,
        host,
        port,
        workers,
        service_kwargs=service_kwargs,
        reuseport=reuseport,
        quiet=quiet,
    ).run()
