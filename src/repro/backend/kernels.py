"""The canonical distance arithmetic, factored to one place.

Every squared-Euclidean distance this library computes on record matrices
— :func:`repro.distance.records.sq_distances_to`, the clustering engine's
masked buffer evaluations, and the serving path's nearest-representative
scans — runs the *same* column-sequential accumulation defined here:
plain elementwise ufuncs, columns left to right.  Unlike a BLAS product
or an ``einsum`` reduction (whose internal summation order depends on the
numpy build, SIMD width and block layout), this order is fully determined
by this module, so

* every caller computes bitwise-identical distances for the same row, and
  exact ties between records (ubiquitous for integer-valued or
  category-encoded data) are preserved everywhere;
* the arithmetic of one output row never depends on which other rows are
  evaluated alongside it — any row-blocking (cache chunking, or the
  threaded backend's worker shards) produces bit-for-bit the same buffer.

Historical note ("one last-ulp rounding"): the seed implementations
summed squares via ``einsum``; canonicalizing to this kernel changed
distance rounding in the last ulp, which on near-tie continuous data can
place a record differently than a pre-canonicalization run on some
particular numpy build would have.  The golden fixtures were generated on
this kernel (see ``scripts/generate_engine_golden.py``), so everything
downstream is pinned to it.

This module deliberately imports nothing from the rest of the library
(the distance layer and the compute backends both sit on top of it) —
the one exception is its private sibling :mod:`repro.backend._native`,
an optional compiled build of the nearest-representative scan that is
admitted only after a load-time differential self-check proves it
bitwise equal to the numpy arithmetic defined here.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from . import _native


def iter_blocks(n: int, block_size: int | None) -> Iterator[tuple[int, int]]:
    """Yield ``(start, stop)`` row ranges covering ``0..n`` in blocks.

    ``block_size=None`` yields the single block ``(0, n)``.  Shared by the
    chunk-aware distance evaluations, the clustering engine and the
    compute backends, so "how large is a block" is decided in exactly one
    place.
    """
    if block_size is None:
        if n:
            yield 0, n
        return
    if block_size <= 0:
        raise ValueError(f"block_size must be positive, got {block_size}")
    for start in range(0, n, block_size):
        yield start, min(start + block_size, n)


def sq_distances_block(
    cols: np.ndarray,
    point: np.ndarray,
    out: np.ndarray,
    tmp: np.ndarray,
    start: int,
    stop: int,
) -> None:
    """Fill ``out[start:stop]`` with squared distances from ``point``.

    ``cols`` is the record matrix *transposed* (``cols[j]`` is column j —
    a plain view ``X.T`` works; the engine passes its column-major working
    copy), ``tmp`` a per-column difference scratch at least ``stop`` long.
    Requires at least one column; callers handle the d == 0 degenerate
    case (all distances zero) themselves.

    The accumulation is column-sequential, left to right, elementwise
    ufuncs only — the single definition of this library's distance
    arithmetic (see the module docstring).  Each output row depends only
    on its own inputs, so any ``(start, stop)`` blocking of a larger
    range produces bitwise-identical results.
    """
    seg = slice(start, stop)
    np.subtract(cols[0, seg], point[0], out=tmp[seg])
    np.multiply(tmp[seg], tmp[seg], out=out[seg])
    for j in range(1, len(point)):
        np.subtract(cols[j, seg], point[j], out=tmp[seg])
        tmp[seg] *= tmp[seg]
        out[seg] += tmp[seg]


def nearest_block(
    cols: np.ndarray,
    reps: np.ndarray,
    assignment: np.ndarray,
    best_d2: np.ndarray,
    d2: np.ndarray,
    tmp: np.ndarray,
    start: int,
    stop: int,
) -> None:
    """Nearest-representative scan for the record rows ``start:stop``.

    For each representative (in ascending id order) the canonical kernel
    evaluates its distances to the block rows, and a strictly-smaller
    update keeps the running best — so exact distance ties resolve to the
    *lowest* representative id, exactly like the per-representative loop
    this replaced (``d2 < best_d2`` per row, representative by
    representative).  ``assignment``/``best_d2`` are the full-length
    output arrays; only their ``start:stop`` rows are touched, so row
    blocks can be evaluated in any order or in parallel.

    When a host C compiler is available the scan dispatches to the
    compiled body in :mod:`repro.backend._native`, which performs the
    identical column-sequential accumulation without per-column array
    temporaries.  It is built with FP contraction disabled, so its
    distances — and therefore assignments, tie resolution included — are
    bitwise equal to this numpy path (a load-time self-check enforces
    that before the fast path is ever used; set ``REPRO_NO_NATIVE=1`` to
    pin the numpy path).
    """
    if stop > start and reps.shape[0] and reps.shape[1]:
        fn = _native.load()
        if fn is not None:
            a_seg = assignment[start:stop]
            b_seg = best_d2[start:stop]
            if (
                a_seg.dtype == np.int64
                and b_seg.dtype == np.float64
                and a_seg.flags.c_contiguous
                and b_seg.flags.c_contiguous
            ):
                rows = np.ascontiguousarray(
                    cols.T[start:stop], dtype=np.float64
                )
                repcols = np.ascontiguousarray(reps.T, dtype=np.float64)
                fn(
                    rows,
                    stop - start,
                    reps.shape[1],
                    repcols,
                    reps.shape[0],
                    a_seg,
                    b_seg,
                )
                return
    _nearest_block_numpy(cols, reps, assignment, best_d2, d2, tmp, start, stop)


def _nearest_block_numpy(
    cols: np.ndarray,
    reps: np.ndarray,
    assignment: np.ndarray,
    best_d2: np.ndarray,
    d2: np.ndarray,
    tmp: np.ndarray,
    start: int,
    stop: int,
) -> None:
    """The canonical (pure-numpy) nearest scan — the arithmetic spec.

    :func:`nearest_block` delegates here when no native build is usable;
    the native body must match this bit for bit (see the differential
    suite and the load-time self-check).
    """
    seg = slice(start, stop)
    for g in range(reps.shape[0]):
        sq_distances_block(cols, reps[g], d2, tmp, start, stop)
        better = d2[seg] < best_d2[seg]
        assignment[seg][better] = g
        best_d2[seg][better] = d2[seg][better]
