"""Pluggable compute backends for the library's hot primitives.

See :mod:`repro.backend.base` for the protocol and the selection rules,
:mod:`repro.backend.kernels` for the canonical distance arithmetic every
backend executes, and :data:`repro.registry.BACKENDS` for discovery by
name (``"serial"``, ``"threaded"`` and ``"process"`` ship registered).
"""

from .base import (
    BACKEND_ENV,
    NUM_THREADS_ENV,
    BackendConfigError,
    ComputeBackend,
    accepts_backend,
    num_threads_default,
    resolve_backend,
)
from .kernels import iter_blocks, sq_distances_block
from .process import ProcessBackend
from .serial import SerialBackend
from .threaded import ThreadedBackend

__all__ = [
    "BACKEND_ENV",
    "NUM_THREADS_ENV",
    "BackendConfigError",
    "ComputeBackend",
    "ProcessBackend",
    "SerialBackend",
    "ThreadedBackend",
    "accepts_backend",
    "iter_blocks",
    "num_threads_default",
    "resolve_backend",
    "sq_distances_block",
]
