"""Compute-backend protocol: the engine's hot primitives, pluggable.

Profiling the three anonymization algorithms (and the fitted-model serving
path) shows all of their distance work funnels through a handful of
primitives: filling a distance buffer from one query point, masked
argmin/argmax selection over that buffer, the k-th-smallest bound behind
stable k-nearest prefixes, scoring a block of swap candidates against an
EMD tracker, and the batch nearest-representative scan.
:class:`ComputeBackend` names exactly those primitives; everything above
it — :class:`~repro.microagg.engine.ClusteringEngine`, the algorithms,
:class:`~repro.core.model.Anonymizer` — is backend-agnostic, so a new
execution strategy (a process pool, numba, a GPU) is one registry entry,
not another engine rewrite.

Three implementations ship: :class:`~repro.backend.serial.SerialBackend`
(this class's own single-threaded numpy bodies, the default),
:class:`~repro.backend.threaded.ThreadedBackend` (row-block shards of the
same kernels on a thread pool) and
:class:`~repro.backend.process.ProcessBackend` (the same shards on a
process pool over shared-memory buffers).  All produce **bit-for-bit
identical results**, because every primitive either keeps per-row arithmetic
unchanged under arbitrary row blocking (the canonical kernel of
:mod:`repro.backend.kernels`) or merges per-shard results under a total
order — see each method's contract below.

Backend selection
-----------------
Backends are discoverable by name through
:data:`repro.registry.BACKENDS`; :func:`resolve_backend` is the single
resolution path used by the engine, the algorithms, ``Anonymizer`` and
the CLI.  ``None`` falls back to the ``REPRO_BACKEND`` environment
variable (default ``"serial"``); the threaded backend sizes its pool from
``REPRO_NUM_THREADS`` (default: the machine's CPU count).  The choice is
a pure execution detail: it is deliberately **not** serialized into saved
models — a model fitted under one backend loads and transforms
identically under any other.
"""

from __future__ import annotations

import inspect
import os

import numpy as np

from ..registry import BACKENDS
from .kernels import iter_blocks, nearest_block, sq_distances_block

#: Environment variable naming the default backend (see resolve_backend).
BACKEND_ENV = "REPRO_BACKEND"

#: Environment variable sizing the threaded backend's worker pool.
NUM_THREADS_ENV = "REPRO_NUM_THREADS"


class BackendConfigError(ValueError):
    """Invalid backend configuration from the environment.

    Raised for an unusable ``REPRO_NUM_THREADS`` value — a *user input*
    problem (the CLI turns it into a clean error message and exit code,
    like an unknown ``REPRO_BACKEND`` name), distinct from the plain
    ``ValueError`` a caller gets for invalid constructor arguments.
    """


class ComputeBackend:
    """Serial reference implementation of the compute primitives.

    The method bodies here *are* the library's canonical single-threaded
    numpy path (the arithmetic the golden fixtures pin); subclasses
    override whichever primitives they can execute differently while
    honouring each contract's bit-for-bit clause.  Instances must be
    safe to share between engines (they hold no per-computation state).
    """

    #: Registry name; subclasses override.
    name = "serial"

    #: Worker-pool width (1 for serial backends) — introspection only.
    num_workers = 1

    # -- working-buffer allocation ---------------------------------------------

    def empty(self, shape) -> np.ndarray:
        """Allocate an uninitialized float64 working buffer.

        The clustering engine allocates its long-lived hot buffers (the
        column-major working copy, the distance buffer, the difference
        scratch) through this hook so a backend can place them in storage
        its workers can reach — the process backend returns views into
        ``multiprocessing.shared_memory`` segments, letting worker
        processes read and write the *same* bytes with zero copying.  The
        base implementation is a plain ``np.empty``; allocation placement
        never changes any computed value, only where it lives.
        """
        return np.empty(shape)

    # -- distance evaluation ---------------------------------------------------

    def eval_sq_distances(
        self,
        cols: np.ndarray,
        point: np.ndarray,
        out: np.ndarray,
        tmp: np.ndarray,
        n: int,
        chunk_size: int | None = None,
    ) -> None:
        """Fill ``out[:n]`` with squared distances from ``point``.

        ``cols`` is the transposed record matrix (``cols[j]`` = column j),
        ``tmp`` an equally long scratch, ``point`` non-empty.  Contract:
        every output row must be computed by the canonical
        column-sequential kernel (:func:`~repro.backend.kernels
        .sq_distances_block`), whose per-row arithmetic is independent of
        row blocking — so any backend's buffer is bitwise identical.
        """
        for start, stop in iter_blocks(n, chunk_size):
            sq_distances_block(cols, point, out, tmp, start, stop)

    # -- selections ------------------------------------------------------------

    def argmin(self, values: np.ndarray) -> int:
        """Index of the smallest entry; exact ties -> lowest index.

        Contract: equivalent to ``np.argmin`` on NaN-free input (all this
        library's buffers are NaN-free; masked entries use ±inf fills).
        The first-minimum rule is a total order on ``(value, index)``, so
        sharded implementations merge deterministically.
        """
        return int(np.argmin(values))

    def argmax(self, values: np.ndarray) -> int:
        """Index of the largest entry; exact ties -> lowest index."""
        return int(np.argmax(values))

    def kth_smallest_value(self, values: np.ndarray, k: int) -> float:
        """Value of the k-th smallest entry (``1 <= k <= len(values)``).

        The selection *bound* behind
        :meth:`~repro.microagg.engine.ClusteringEngine.k_nearest_sorted`:
        a property of the value multiset only, hence identical under any
        sharding.  (Which *indices* attain it is resolved by the caller
        with a stable sort, so tie-breaking never depends on the backend.)
        """
        return float(values[np.argpartition(values, k - 1)[:k]].max())

    # -- batched candidate EMD scoring -----------------------------------------

    def score_swaps(
        self,
        trackers,
        member_records: np.ndarray,
        candidate_records: np.ndarray,
    ) -> np.ndarray:
        """Score a block of swap candidates against one cluster tracker.

        Returns the ``(len(candidate_records), len(member_records))``
        matrix of
        :meth:`~repro.core.confidential.ClusterTrackerSet.swap_emds_batch`
        — row b is bitwise the vector ``swap_emds(member_records,
        candidate_records[b])`` would produce, and each row's arithmetic
        is independent of which other candidates share the call, so
        backends may shard the candidate axis freely.  Scoring is
        read-only on the tracker (no caches are touched), which is what
        makes that sharding safe.
        """
        return trackers.swap_emds_batch(member_records, candidate_records)

    # -- serving: nearest fitted representative --------------------------------

    def assign_nearest(self, X: np.ndarray, reps: np.ndarray) -> np.ndarray:
        """Nearest representative (by canonical squared distance) per row.

        Exact ties resolve to the lowest representative index.  Contract:
        per-row results equal :func:`~repro.backend.kernels.nearest_block`
        over any row blocking (each row's scan is independent).  Input
        coercion/validation lives here once; backends override the
        :meth:`_assign_nearest` execution body only.
        """
        X = np.asarray(X, dtype=np.float64)
        reps = np.ascontiguousarray(reps, dtype=np.float64)
        if X.ndim != 2 or reps.ndim != 2 or X.shape[1] != reps.shape[1]:
            raise ValueError(
                f"X and reps must be 2-D with equal widths, got "
                f"{X.shape} and {reps.shape}"
            )
        if reps.shape[0] == 0:
            raise ValueError("reps must hold at least one representative")
        assignment = np.zeros(X.shape[0], dtype=np.int64)
        if X.shape[0] == 0 or X.shape[1] == 0:
            return assignment
        self._assign_nearest(X, reps, assignment)
        return assignment

    def _assign_nearest(
        self, X: np.ndarray, reps: np.ndarray, assignment: np.ndarray
    ) -> None:
        """Execution body of :meth:`assign_nearest` (inputs pre-validated,
        non-degenerate); fills ``assignment`` in place."""
        n = X.shape[0]
        best_d2 = np.full(n, np.inf)
        d2 = np.empty(n)
        tmp = np.empty(n)
        nearest_block(X.T, reps, assignment, best_d2, d2, tmp, 0, n)

    # -- cosmetics -------------------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


#: Default instance per registered name, built lazily by resolve_backend
#: (a threaded backend owns a worker pool; one shared instance per process
#: is the right granularity for "give me the named backend").
_DEFAULT_INSTANCES: dict[str, ComputeBackend] = {}


def resolve_backend(spec: "ComputeBackend | str | None" = None) -> ComputeBackend:
    """Resolve a backend argument to a live :class:`ComputeBackend`.

    ``None`` reads the ``REPRO_BACKEND`` environment variable (default
    ``"serial"``); a string is looked up in
    :data:`repro.registry.BACKENDS` and resolves to a process-wide shared
    instance (constructed on first use — the threaded backend therefore
    reads ``REPRO_NUM_THREADS`` once, at that moment); a
    :class:`ComputeBackend` instance passes through unchanged (the escape
    hatch for explicit configuration, e.g.
    ``ThreadedBackend(num_threads=2)``).
    """
    if spec is None:
        spec = os.environ.get(BACKEND_ENV) or "serial"
    if isinstance(spec, str):
        if spec not in _DEFAULT_INSTANCES:
            _DEFAULT_INSTANCES[spec] = BACKENDS.resolve(spec)()
        return _DEFAULT_INSTANCES[spec]
    if isinstance(spec, ComputeBackend):
        return spec
    raise TypeError(
        f"backend must be a name, a ComputeBackend instance or None, "
        f"got {type(spec).__name__}"
    )


def accepts_backend(fn) -> bool:
    """Whether ``fn`` explicitly names a ``backend`` keyword parameter.

    The forwarding guard for registry-discovered callables (methods,
    partitioners): built-ins take ``backend=`` and receive the session's
    choice; a third-party callable without the parameter is simply called
    as before — never surprised with an unknown keyword (``**kwargs``
    catch-alls deliberately don't count, since such a callable gives no
    evidence it understands the argument).
    """
    try:
        params = inspect.signature(fn).parameters
    except (TypeError, ValueError):  # pragma: no cover - exotic callables
        return False
    return "backend" in params


def num_threads_default() -> int:
    """Worker count from ``REPRO_NUM_THREADS``, else the CPU count."""
    env = os.environ.get(NUM_THREADS_ENV)
    if env:
        try:
            count = int(env)
        except ValueError:
            raise BackendConfigError(
                f"{NUM_THREADS_ENV} must be an integer >= 1, got {env!r}"
            ) from None
        if count < 1:
            raise BackendConfigError(
                f"{NUM_THREADS_ENV} must be >= 1, got {count}"
            )
        return count
    return os.cpu_count() or 1
