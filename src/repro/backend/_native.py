"""Optional compiled fast path for the nearest-representative scan.

The serving hot loop (:func:`repro.backend.kernels.nearest_block`) spends
its time streaming ``n_rows x n_reps`` squared distances through numpy
ufunc temporaries.  On hosts that ship a C compiler this module builds a
small shared library computing *the same arithmetic in the same order* —
for each (row, representative) pair::

    t = x[0] - rep[0];  acc  = t * t;
    t = x[j] - rep[j];  acc += t * t;     # columns left to right

which is exactly the column-sequential elementwise accumulation the
canonical kernel performs, just without per-column array temporaries.
Compiled with ``-ffp-contract=off`` every multiply and add rounds as an
individual IEEE-754 double operation (no FMA contraction), so the native
distances are bitwise identical to the numpy path, and the strictly-
smaller scan in ascending representative order preserves the exact-tie
rule (lowest representative id wins).

The build is best-effort and cached:

* no compiler, a failed compile, or ``REPRO_NO_NATIVE=1`` → ``load()``
  returns ``None`` and callers keep the numpy path;
* the shared object is cached under the system temp directory keyed by a
  hash of the source and toolchain, so forked serving workers and repeat
  processes reuse one artifact (built via a unique temp name and
  ``os.replace`` — concurrent builders race benignly);
* after loading, a differential self-check runs the native scan against
  the numpy kernel on a small tie-heavy fixture and rejects the library
  on any bit difference, so a misbehaving toolchain degrades to the
  (slow, correct) fallback instead of corrupting assignments.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import sys
import tempfile
from pathlib import Path

import numpy as np

_SOURCE = r"""
#include <stddef.h>

#define BLOCK 256

/* rows:     n x d, row-major (one record per row)
 * repcols:  d x n_reps, row-major (one column of the rep matrix per row)
 * assignment / best_d2: length n, running best id / squared distance.
 *
 * Arithmetic contract (must match repro.backend.kernels exactly):
 * squared distances accumulate column-sequentially, left to right, one
 * rounded multiply and one rounded add per column -- compile with
 * -ffp-contract=off so no FMA contraction merges them.  The final scan
 * updates on strictly-smaller only, in ascending representative order,
 * so exact ties keep the lowest representative id.
 */
void repro_nearest(const double *restrict rows, long long n, long long d,
                   const double *restrict repcols, long long n_reps,
                   long long *restrict assignment,
                   double *restrict best_d2)
{
    double buf[BLOCK];
    for (long long i = 0; i < n; ++i) {
        const double *x = rows + i * d;
        double best = best_d2[i];
        long long best_id = assignment[i];
        for (long long g0 = 0; g0 < n_reps; g0 += BLOCK) {
            long long m = n_reps - g0;
            if (m > BLOCK)
                m = BLOCK;
            const double *c0 = repcols + g0;
            for (long long r = 0; r < m; ++r) {
                double t = x[0] - c0[r];
                buf[r] = t * t;
            }
            for (long long j = 1; j < d; ++j) {
                const double *cj = repcols + j * n_reps + g0;
                double xj = x[j];
                for (long long r = 0; r < m; ++r) {
                    double t = xj - cj[r];
                    buf[r] += t * t;
                }
            }
            for (long long r = 0; r < m; ++r) {
                if (buf[r] < best) {
                    best = buf[r];
                    best_id = g0 + r;
                }
            }
        }
        best_d2[i] = best;
        assignment[i] = best_id;
    }
}
"""

_BASE_FLAGS = ["-O3", "-ffp-contract=off", "-fno-math-errno", "-shared", "-fPIC"]

_UNSET = object()
_cached: object = _UNSET


def _cache_dir() -> Path:
    return Path(tempfile.gettempdir()) / f"repro-native-{os.getuid()}"


def _compile(cc: str) -> Path | None:
    tag = f"{_SOURCE}|{cc}|{sys.version_info[:2]}|v1"
    key = hashlib.sha256(tag.encode()).hexdigest()[:16]
    cache = _cache_dir()
    so_path = cache / f"nearest-{key}.so"
    if so_path.exists():
        return so_path
    cache.mkdir(parents=True, exist_ok=True)
    with tempfile.TemporaryDirectory(dir=cache) as build:
        src = Path(build) / "nearest.c"
        src.write_text(_SOURCE)
        out = Path(build) / "nearest.so"
        for flags in (["-march=native", *_BASE_FLAGS], _BASE_FLAGS):
            proc = subprocess.run(
                [cc, *flags, str(src), "-o", str(out)],
                capture_output=True,
                timeout=120,
            )
            if proc.returncode == 0:
                os.replace(out, so_path)  # atomic vs concurrent builders
                return so_path
    return None


def _self_check(fn) -> bool:
    """Native scan must be bit-for-bit the numpy kernel on tie-heavy data."""
    from . import kernels

    rng = np.random.default_rng(0)
    # Half-integer grid data makes exact cross-representative ties common.
    X = np.round(rng.standard_normal((64, 3)) * 2.0) / 2.0
    reps = np.round(rng.standard_normal((17, 3)) * 2.0) / 2.0
    n = len(X)
    a_ref = np.zeros(n, dtype=np.int64)
    b_ref = np.full(n, np.inf)
    kernels._nearest_block_numpy(
        X.T, reps, a_ref, b_ref, np.empty(n), np.empty(n), 0, n
    )
    a_nat = np.zeros(n, dtype=np.int64)
    b_nat = np.full(n, np.inf)
    fn(
        np.ascontiguousarray(X),
        n,
        X.shape[1],
        np.ascontiguousarray(reps.T),
        len(reps),
        a_nat,
        b_nat,
    )
    return np.array_equal(a_ref, a_nat) and np.array_equal(b_ref, b_nat)


def load():
    """Return the compiled nearest-scan entry point, or ``None``.

    The result (including failure) is memoized for the process lifetime.
    The returned callable has the raw C signature
    ``(rows, n, d, repcols, n_reps, assignment, best_d2)`` with numpy
    arrays passed directly (ctypes ndpointer argtypes enforce dtype and
    contiguity).
    """
    global _cached
    if _cached is not _UNSET:
        return _cached
    _cached = None
    if os.environ.get("REPRO_NO_NATIVE"):
        return None
    cc = shutil.which("cc") or shutil.which("gcc") or shutil.which("clang")
    if cc is None:
        return None
    try:
        so_path = _compile(cc)
        if so_path is None:
            return None
        lib = ctypes.CDLL(str(so_path))
        fn = lib.repro_nearest
        c_double_p = np.ctypeslib.ndpointer(
            dtype=np.float64, flags="C_CONTIGUOUS"
        )
        c_int64_p = np.ctypeslib.ndpointer(
            dtype=np.int64, flags="C_CONTIGUOUS"
        )
        fn.argtypes = [
            c_double_p,
            ctypes.c_longlong,
            ctypes.c_longlong,
            c_double_p,
            ctypes.c_longlong,
            c_int64_p,
            c_double_p,
        ]
        fn.restype = None
        if not _self_check(fn):
            return None
        _cached = fn
    except Exception:
        _cached = None
    return _cached
