"""The default single-threaded numpy backend."""

from __future__ import annotations

from ..registry import register_backend
from .base import ComputeBackend


@register_backend("serial")
class SerialBackend(ComputeBackend):
    """Single-threaded numpy execution of the compute primitives.

    This is :class:`~repro.backend.base.ComputeBackend` itself — the
    protocol's reference bodies *are* the serial path (behaviour-identical
    to the pre-backend engine internals they were extracted from); the
    subclass exists to give the default a registry entry of its own.
    """

    name = "serial"
