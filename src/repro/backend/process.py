"""Process backend: the canonical kernels, sharded across worker processes.

The threaded backend escapes the GIL only while numpy runs ufunc inner
loops; for workloads dominated by many smaller evaluations the
interpreter bookkeeping between ufunc calls re-serializes the workers.  A
process pool sidesteps the GIL entirely — at the price of crossing a
process boundary, which this backend pays only in ways that keep the
bit-for-bit contract and avoid copying the operands:

* **shared-memory operands** — the clustering engine allocates its hot
  buffers (column-major working copy, distance buffer, scratch) through
  :meth:`ComputeBackend.empty`, which here places them in
  ``multiprocessing.shared_memory`` segments.  A worker attaches the
  segment *once* (cached per process) and then reads and writes the same
  physical bytes as the parent — a shard's task message is a few segment
  descriptors and two integers, never an array;
* **canonical arithmetic** — every shard runs the same
  :func:`~repro.backend.kernels.sq_distances_block` /
  :func:`~repro.backend.kernels.nearest_block` bodies on the same floats,
  and per-row results are blocking-invariant, so the assembled buffer is
  bitwise the serial one;
* **deterministic merges** — per-shard argmin/argmax candidates merge
  under the strict ``(value, index)`` order exactly like the threaded
  backend; the k-th-smallest bound merges per-shard top-k multisets.

Primitives whose operands live outside backend-allocated storage fall
back as follows: distance evaluation and the masked selections run the
inherited serial bodies (correct on any array; the engine's hot loop
always passes shared buffers); :meth:`assign_nearest` *stages* its inputs
into throwaway shared segments when the batch is large enough to amortize
the copy.  :meth:`score_swaps` stays serial by design: the EMD trackers
are interlinked Python objects whose per-call pickling would cost more
than the scoring they shard.

Worker lifecycle: workers are forked (POSIX) or spawned lazily on first
use; a crashed pool (``BrokenProcessPool``) is discarded so the next call
starts a fresh one.  Segments are unlinked when their array is garbage
collected or the backend is :meth:`closed <close>`; workers drop their
cached attachments once the cache exceeds a small cap, so long sessions
do not accumulate stale mappings.  On a single-core container the pool
adds dispatch overhead and wins nothing — exactly like the threaded
backend, the benchmark harness records worker and CPU counts so such
numbers read as what they are.
"""

from __future__ import annotations

import multiprocessing
import os
import sys
import weakref
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from ..registry import register_backend
from .base import ComputeBackend, num_threads_default
from .kernels import iter_blocks, nearest_block, sq_distances_block

#: A segment descriptor: (segment name, byte offset, shape) of a float64
#: C-contiguous array living inside a shared-memory segment.
_Desc = tuple

#: Worker-side attachment cache size above which dead segments are pruned.
_ATTACH_CACHE_CAP = 64

_attached: dict = {}


def _prune_dead_attachments() -> None:
    """Drop cached attachments whose segment the parent has unlinked.

    Only provably dead segments are touched: an unlinked segment can never
    be named by a future task (descriptors always carry live names), so
    unmapping it between tasks is safe — whereas closing a *live* cached
    attachment can pull the mapping out from under a view created earlier
    in the same task.  POSIX shm liveness is visible as a ``/dev/shm``
    entry; where that directory doesn't exist the cache simply grows (one
    small mapping per engine buffer — harmless at realistic scales).
    """
    if len(_attached) <= _ATTACH_CACHE_CAP or not os.path.isdir("/dev/shm"):
        return
    for name, shm in list(_attached.items()):
        if os.path.exists("/dev/shm/" + shm.name):
            continue
        try:
            shm.close()
        except BufferError:  # pragma: no cover - a view still exports it
            continue
        del _attached[name]


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach a segment without registering it with the resource tracker.

    Attach-time registration (bpo-39959) is wrong for a worker twice
    over: the worker does not own the segment, and with a forked pool the
    parent and workers share one tracker process — so the usual
    register-then-unregister dance would erase the *parent's* ownership
    entry and break its unlink.  Python 3.13 grew ``track=False`` for
    exactly this; older versions get the registration call stubbed out
    for the duration of the attach.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # pragma: no cover - version-dependent signature
        pass
    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


def _attach(name: str) -> shared_memory.SharedMemory:
    """Attach (and cache) a shared segment in a worker process."""
    shm = _attached.get(name)
    if shm is None:
        _prune_dead_attachments()
        shm = _attach_untracked(name)
        _attached[name] = shm
    return shm


def _view(desc: _Desc) -> np.ndarray:
    """Materialize a worker-side ndarray over a segment descriptor."""
    name, offset, shape = desc
    shm = _attach(name)
    return np.ndarray(shape, dtype=np.float64, buffer=shm.buf, offset=offset)


def _view_i64(desc: _Desc) -> np.ndarray:
    name, offset, shape = desc
    shm = _attach(name)
    return np.ndarray(shape, dtype=np.int64, buffer=shm.buf, offset=offset)


# -- worker task bodies (module level: picklable by reference) -----------------


def _eval_shard(
    cols_desc: _Desc,
    point: np.ndarray,
    out_desc: _Desc,
    start: int,
    stop: int,
    chunk_size: int | None,
) -> None:
    cols = _view(cols_desc)
    out = _view(out_desc)
    tmp = np.empty(out.shape[0])
    for lo, hi in iter_blocks(stop - start, chunk_size):
        sq_distances_block(cols, point, out, tmp, start + lo, start + hi)


def _argext_shard(values_desc: _Desc, start: int, stop: int, find_min: bool) -> int:
    values = _view(values_desc)
    seg = values[start:stop]
    return start + int(np.argmin(seg) if find_min else np.argmax(seg))


def _kth_shard(values_desc: _Desc, start: int, stop: int, k: int) -> np.ndarray:
    values = _view(values_desc)
    seg = values[start:stop]
    if k >= seg.size:
        return np.asarray(seg)
    return np.partition(seg, k - 1)[:k]


def _assign_shard(
    cols_desc: _Desc,
    reps_desc: _Desc,
    assignment_desc: _Desc,
    start: int,
    stop: int,
) -> None:
    cols = _view(cols_desc)
    reps = _view(reps_desc)
    assignment = _view_i64(assignment_desc)
    n = stop - start
    best_d2 = np.full(n, np.inf)
    d2 = np.empty(n)
    tmp = np.empty(n)
    nearest_block(
        cols[:, start:stop],
        reps,
        assignment[start:stop],
        best_d2,
        d2,
        tmp,
        0,
        n,
    )


def _release_segment(shm: shared_memory.SharedMemory, registry: dict) -> None:
    registry.pop(shm.name, None)
    try:
        shm.close()
        shm.unlink()
    except (FileNotFoundError, OSError):  # pragma: no cover - double release
        pass


@register_backend("process")
class ProcessBackend(ComputeBackend):
    """Row-block parallel execution on a process pool over shared memory.

    Parameters
    ----------
    num_workers:
        Pool width.  Default: ``REPRO_NUM_THREADS`` if set, else the CPU
        count (the variable names the worker budget for every parallel
        backend, not a threading implementation detail).
    min_rows:
        Smallest buffer length worth sharding for distance evaluation and
        masked selections.  Higher than the threaded backend's floor:
        a process dispatch costs roughly an order of magnitude more than
        a thread dispatch.
    min_assign_rows:
        Row floor for sharding (and staging) the nearest-representative
        scan.
    min_shm_bytes:
        Buffers smaller than this are allocated as ordinary arrays —
        a shared segment has kernel-object overhead a tiny scratch never
        repays (such buffers simply make the serial fallbacks kick in).
    """

    name = "process"

    def __init__(
        self,
        num_workers: int | None = None,
        *,
        min_rows: int = 65536,
        min_assign_rows: int = 8192,
        min_shm_bytes: int = 4096,
    ) -> None:
        if num_workers is None:
            num_workers = num_threads_default()
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        for label, value in (
            ("min_rows", min_rows),
            ("min_assign_rows", min_assign_rows),
        ):
            if value < 1:
                raise ValueError(f"{label} must be >= 1, got {value}")
        self.num_workers = int(num_workers)
        self._min_rows = int(min_rows)
        self._min_assign_rows = int(min_assign_rows)
        self._min_shm_bytes = int(min_shm_bytes)
        self._pool: ProcessPoolExecutor | None = None
        #: name -> (segment, base address, end address) for owned segments.
        self._segments: dict[str, tuple] = {}

    # -- pool plumbing ---------------------------------------------------------

    def _executor(self) -> ProcessPoolExecutor:
        if self._pool is None:
            context = (
                multiprocessing.get_context("fork")
                if sys.platform.startswith(("linux", "darwin"))
                else multiprocessing.get_context()
            )
            self._pool = ProcessPoolExecutor(
                max_workers=self.num_workers, mp_context=context
            )
        return self._pool

    def close(self) -> None:
        """Shut the pool down and unlink every owned segment (idempotent).

        Arrays handed out by :meth:`empty` become invalid afterwards; the
        backend itself stays usable (a fresh pool starts lazily, and new
        allocations create new segments).
        """
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        for name in list(self._segments):
            shm = self._segments[name][0]
            _release_segment(shm, self._segments)

    def _run(self, submits: list) -> list:
        """Execute ``(fn, *args)`` tasks on the pool, results in order.

        A broken pool (a worker died mid-task: OOM kill, signal) is
        discarded before re-raising, so the *next* call starts a fresh
        pool instead of failing forever on the corpse.
        """
        executor = self._executor()
        futures = [executor.submit(*submit) for submit in submits]
        try:
            return [future.result() for future in futures]
        except BrokenProcessPool:
            self._pool = None
            raise
        except Exception:
            for future in futures:
                future.cancel()
            raise
        except BaseException:
            if self._pool is not None:
                self._pool.shutdown(wait=False, cancel_futures=True)
                self._pool = None
            raise

    def _shards(self, n: int, floor: int) -> list[tuple[int, int]]:
        width = min(self.num_workers, max(1, n // floor))
        if width <= 1:
            return [(0, n)]
        edges = np.linspace(0, n, width + 1).astype(np.int64)
        return [
            (int(edges[i]), int(edges[i + 1]))
            for i in range(width)
            if edges[i] < edges[i + 1]
        ]

    # -- shared-memory allocation ----------------------------------------------

    def empty(self, shape) -> np.ndarray:
        if not isinstance(shape, tuple):
            shape = (shape,)
        shape = tuple(int(s) for s in shape)
        nbytes = 8 * int(np.prod(shape, dtype=np.int64))
        if nbytes < self._min_shm_bytes:
            return np.empty(shape)
        shm = shared_memory.SharedMemory(create=True, size=nbytes)
        arr = np.ndarray(shape, dtype=np.float64, buffer=shm.buf)
        lo, hi = np.lib.array_utils.byte_bounds(arr)
        self._segments[shm.name] = (shm, lo, hi)
        # The segment dies with its array: engines never explicitly free
        # their buffers, so ownership rides the array's lifetime (close()
        # remains the eager path).  The finalizer must not capture `arr`.
        weakref.finalize(arr, _release_segment, shm, self._segments)
        return arr

    def _locate(self, arr: np.ndarray) -> _Desc | None:
        """Segment descriptor for an array living in an owned segment.

        Accepts any C-contiguous float64 view whose bytes fall inside one
        segment (the engine passes full buffers and prefix slices).
        Returns ``None`` for foreign arrays — the caller falls back to
        the inherited serial body, which is correct on anything.
        """
        if (
            not isinstance(arr, np.ndarray)
            or arr.dtype != np.float64
            or not arr.flags.c_contiguous
        ):
            return None
        lo, hi = np.lib.array_utils.byte_bounds(arr)
        for name, (_, base_lo, base_hi) in self._segments.items():
            if base_lo <= lo and hi <= base_hi:
                return (name, lo - base_lo, arr.shape)
        return None

    def _stage(self, arr: np.ndarray, dtype=np.float64) -> tuple:
        """Copy a foreign array into a throwaway segment; returns
        ``(segment, descriptor)`` — the caller unlinks after use."""
        arr = np.ascontiguousarray(arr, dtype=dtype)
        shm = shared_memory.SharedMemory(create=True, size=max(arr.nbytes, 1))
        view = np.ndarray(arr.shape, dtype=dtype, buffer=shm.buf)
        view[...] = arr
        return shm, (shm.name, 0, arr.shape)

    # -- distance evaluation ---------------------------------------------------

    def eval_sq_distances(
        self,
        cols: np.ndarray,
        point: np.ndarray,
        out: np.ndarray,
        tmp: np.ndarray,
        n: int,
        chunk_size: int | None = None,
    ) -> None:
        shards = self._shards(n, self._min_rows)
        cols_desc = self._locate(cols) if len(shards) > 1 else None
        out_desc = self._locate(out) if cols_desc is not None else None
        if out_desc is None:
            super().eval_sq_distances(cols, point, out, tmp, n, chunk_size)
            return
        self._run(
            [
                (
                    _eval_shard,
                    cols_desc,
                    np.ascontiguousarray(point),
                    out_desc,
                    start,
                    stop,
                    chunk_size,
                )
                for start, stop in shards
            ]
        )

    # -- selections ------------------------------------------------------------

    def _arg_extremum_sharded(self, values: np.ndarray, find_min: bool) -> int | None:
        shards = self._shards(len(values), self._min_rows)
        if len(shards) <= 1:
            return None
        desc = self._locate(values)
        if desc is None:
            return None
        locals_ = self._run(
            [(_argext_shard, desc, start, stop, find_min) for start, stop in shards]
        )
        # Shards ascend; strictly-better keeps numpy's lowest-index rule.
        best = locals_[0]
        for idx in locals_[1:]:
            if (values[idx] < values[best]) if find_min else (
                values[idx] > values[best]
            ):
                best = idx
        return int(best)

    def argmin(self, values: np.ndarray) -> int:
        sharded = self._arg_extremum_sharded(values, True)
        return sharded if sharded is not None else super().argmin(values)

    def argmax(self, values: np.ndarray) -> int:
        sharded = self._arg_extremum_sharded(values, False)
        return sharded if sharded is not None else super().argmax(values)

    def kth_smallest_value(self, values: np.ndarray, k: int) -> float:
        shards = self._shards(len(values), self._min_rows)
        desc = self._locate(values) if len(shards) > 1 else None
        if desc is None:
            return super().kth_smallest_value(values, k)
        top = np.concatenate(
            self._run([(_kth_shard, desc, start, stop, k) for start, stop in shards])
        )
        # The global k smallest all survive their own shard's cut.
        return float(np.partition(top, k - 1)[:k].max())

    # -- serving: nearest fitted representative --------------------------------

    def _assign_nearest(
        self, X: np.ndarray, reps: np.ndarray, assignment: np.ndarray
    ) -> None:
        n = X.shape[0]
        shards = self._shards(n, self._min_assign_rows)
        if len(shards) <= 1:
            super()._assign_nearest(X, reps, assignment)
            return
        staged = []
        try:
            cols_shm, cols_desc = self._stage(X.T)
            staged.append(cols_shm)
            reps_shm, reps_desc = self._stage(reps)
            staged.append(reps_shm)
            out_shm, out_desc = self._stage(assignment, dtype=np.int64)
            staged.append(out_shm)
            self._run(
                [
                    (_assign_shard, cols_desc, reps_desc, out_desc, start, stop)
                    for start, stop in shards
                ]
            )
            out_view = np.ndarray(
                assignment.shape, dtype=np.int64, buffer=out_shm.buf
            )
            assignment[...] = out_view
            del out_view
        finally:
            for shm in staged:
                try:
                    shm.close()
                    shm.unlink()
                except (FileNotFoundError, OSError):  # pragma: no cover
                    pass

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ProcessBackend(num_workers={self.num_workers})"
