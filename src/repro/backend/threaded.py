"""Threaded backend: the canonical kernels, sharded across a worker pool.

The distance kernel is elementwise ufunc work — numpy releases the GIL
while executing it — so contiguous *row-block shards* of one evaluation
run genuinely in parallel on multi-core machines.  Every primitive keeps
the serial backend's bit-for-bit results:

* **distance evaluation** — each output row's arithmetic is the canonical
  column-sequential kernel regardless of blocking
  (:mod:`repro.backend.kernels`), so shard boundaries are invisible in
  the buffer;
* **argmin / argmax** — per-shard first-extremum candidates are merged
  under the strict ``(value, index)`` order (a lower shard only loses to
  a strictly better value), reproducing numpy's first-occurrence rule;
* **k-th-smallest bound** — the global k smallest values are a subset of
  the per-shard k smallest, so the merged bound is the identical float;
* **candidate scoring** — each candidate row of
  :meth:`~repro.core.confidential.ClusterTrackerSet.swap_emds_batch` is
  computed independently and the scoring pass is read-only on the
  tracker, so the candidate axis shards freely;
* **nearest-representative assignment** — per-row scans are independent.

Shard-size floors keep the pool out of the small-input regime where
dispatch overhead (tens of microseconds per submit) would dominate; below
them every primitive falls through to the inherited serial body.  On a
single-core host the pool adds overhead and wins nothing — pick the
serial backend there (the benchmark harness records the thread count and
CPU count alongside every entry for exactly this reason).
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import numpy as np

from ..registry import register_backend
from .base import ComputeBackend, num_threads_default
from .kernels import iter_blocks, nearest_block, sq_distances_block


@register_backend("threaded")
class ThreadedBackend(ComputeBackend):
    """Row-block parallel execution of the compute primitives.

    Parameters
    ----------
    num_threads:
        Worker-pool width.  Default: ``REPRO_NUM_THREADS`` if set, else
        the CPU count.  ``1`` degenerates to the serial bodies (still a
        valid backend; useful for apples-to-apples overhead checks).
    min_rows:
        Smallest buffer length worth sharding for distance evaluation and
        masked selections (one shard's kernel work must dwarf one pool
        dispatch).
    min_assign_rows:
        Row floor for sharding the nearest-representative scan — each row
        costs O(representatives × d), so much smaller blocks than
        ``min_rows`` already amortize a dispatch.
    min_candidates:
        Candidate-block floor for sharding batched swap scoring.
    """

    name = "threaded"

    def __init__(
        self,
        num_threads: int | None = None,
        *,
        min_rows: int = 16384,
        min_assign_rows: int = 1024,
        min_candidates: int = 16,
    ) -> None:
        if num_threads is None:
            num_threads = num_threads_default()
        if num_threads < 1:
            raise ValueError(f"num_threads must be >= 1, got {num_threads}")
        for label, value in (
            ("min_rows", min_rows),
            ("min_assign_rows", min_assign_rows),
            ("min_candidates", min_candidates),
        ):
            if value < 1:
                raise ValueError(f"{label} must be >= 1, got {value}")
        self.num_workers = int(num_threads)
        self._min_rows = int(min_rows)
        self._min_assign_rows = int(min_assign_rows)
        self._min_candidates = int(min_candidates)
        self._pool: ThreadPoolExecutor | None = None

    # -- pool plumbing ---------------------------------------------------------

    def _executor(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.num_workers,
                thread_name_prefix="repro-backend",
            )
        return self._pool

    def close(self) -> None:
        """Shut the worker pool down (idempotent; a fresh one is created
        lazily if the backend is used again)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def _shards(self, n: int, floor: int) -> list[tuple[int, int]]:
        """Balanced contiguous ``(start, stop)`` shards of ``0..n``.

        At most ``num_workers`` shards, none shorter than ``floor`` (a
        single shard — the caller's cue to stay serial — when ``n`` is too
        small to split profitably).
        """
        width = min(self.num_workers, max(1, n // floor))
        if width <= 1:
            return [(0, n)]
        edges = np.linspace(0, n, width + 1).astype(np.int64)
        return [
            (int(edges[i]), int(edges[i + 1]))
            for i in range(width)
            if edges[i] < edges[i + 1]
        ]

    def _run(self, tasks) -> list:
        """Execute thunks on the pool, re-raising the first failure.

        A worker exception is re-raised in the caller with the worker's
        original traceback (``Future.result`` chains it); the remaining
        futures are cancelled so a failed evaluation does not keep burning
        pool time.  ``KeyboardInterrupt`` while waiting tears the pool
        down promptly — queued work is dropped rather than drained — and
        a fresh pool is created lazily on the next use.
        """
        executor = self._executor()
        futures = [executor.submit(task) for task in tasks]
        try:
            return [future.result() for future in futures]
        except Exception:
            for future in futures:
                future.cancel()
            raise
        except BaseException:
            # KeyboardInterrupt (or an injected kill) while waiting: the
            # backend may never get another call, so don't leave workers
            # grinding through the queue behind it.
            if self._pool is not None:
                self._pool.shutdown(wait=False, cancel_futures=True)
                self._pool = None
            raise

    # -- distance evaluation ---------------------------------------------------

    def eval_sq_distances(
        self,
        cols: np.ndarray,
        point: np.ndarray,
        out: np.ndarray,
        tmp: np.ndarray,
        n: int,
        chunk_size: int | None = None,
    ) -> None:
        shards = self._shards(n, self._min_rows)
        if len(shards) <= 1:
            super().eval_sq_distances(cols, point, out, tmp, n, chunk_size)
            return

        def work(start: int, stop: int):
            def body() -> None:
                # tmp/out writes stay inside [start, stop): shards never
                # overlap, so the shared scratch needs no locking.
                for lo, hi in iter_blocks(stop - start, chunk_size):
                    sq_distances_block(
                        cols, point, out, tmp, start + lo, start + hi
                    )

            return body

        self._run([work(start, stop) for start, stop in shards])

    # -- selections ------------------------------------------------------------

    def _arg_extremum(self, values: np.ndarray, find) -> int:
        shards = self._shards(len(values), self._min_rows)
        if len(shards) <= 1:
            return int(find(values))
        locals_ = self._run(
            [
                (lambda s=start, e=stop: (s + int(find(values[s:e]))))
                for start, stop in shards
            ]
        )
        # Deterministic merge: shards ascend, so keeping a strictly better
        # value reproduces numpy's lowest-index rule on exact ties.
        best = locals_[0]
        if find is np.argmin:
            for idx in locals_[1:]:
                if values[idx] < values[best]:
                    best = idx
        else:
            for idx in locals_[1:]:
                if values[idx] > values[best]:
                    best = idx
        return int(best)

    def argmin(self, values: np.ndarray) -> int:
        return self._arg_extremum(values, np.argmin)

    def argmax(self, values: np.ndarray) -> int:
        return self._arg_extremum(values, np.argmax)

    def kth_smallest_value(self, values: np.ndarray, k: int) -> float:
        shards = self._shards(len(values), self._min_rows)
        if len(shards) <= 1:
            return super().kth_smallest_value(values, k)

        def smallest(start: int, stop: int):
            def body() -> np.ndarray:
                seg = values[start:stop]
                if k >= seg.size:
                    return seg
                return np.partition(seg, k - 1)[:k]

            return body

        # The global k smallest values all survive their own shard's cut,
        # so the k-th smallest of the concatenation is the identical float.
        top = np.concatenate(self._run([smallest(s, e) for s, e in shards]))
        return float(np.partition(top, k - 1)[:k].max())

    # -- batched candidate EMD scoring -----------------------------------------

    def score_swaps(
        self,
        trackers,
        member_records: np.ndarray,
        candidate_records: np.ndarray,
    ) -> np.ndarray:
        n_cand = len(candidate_records)
        width = min(self.num_workers, max(1, n_cand // self._min_candidates))
        if width <= 1:
            return super().score_swaps(trackers, member_records, candidate_records)
        pieces = np.array_split(np.asarray(candidate_records), width)
        rows = self._run(
            [
                (
                    lambda piece=piece: trackers.swap_emds_batch(
                        member_records, piece
                    )
                )
                for piece in pieces
            ]
        )
        # Row b's arithmetic is independent of its batch-mates, so the
        # concatenation is bitwise the one-call result.
        return np.concatenate(rows, axis=0)

    # -- serving: nearest fitted representative --------------------------------

    def _assign_nearest(
        self, X: np.ndarray, reps: np.ndarray, assignment: np.ndarray
    ) -> None:
        n = X.shape[0]
        shards = self._shards(n, self._min_assign_rows)
        if len(shards) <= 1:
            super()._assign_nearest(X, reps, assignment)
            return
        best_d2 = np.full(n, np.inf)
        cols = X.T

        def work(start: int, stop: int):
            def body() -> None:
                length = stop - start
                d2 = np.empty(length)
                tmp = np.empty(length)
                nearest_block(
                    cols[:, start:stop],
                    reps,
                    assignment[start:stop],
                    best_d2[start:stop],
                    d2,
                    tmp,
                    0,
                    length,
                )

            return body

        self._run([work(start, stop) for start, stop in shards])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ThreadedBackend(num_threads={self.num_workers})"
