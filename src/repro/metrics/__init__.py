"""Information-loss and analytical-utility metrics."""

from .information_loss import (
    average_class_size_metric,
    discernibility,
    normalized_sse,
    sse_ratio,
    within_cluster_sse,
)
from .utility import QueryWorkloadReport, correlation_shift, range_query_error

__all__ = [
    "normalized_sse",
    "sse_ratio",
    "discernibility",
    "average_class_size_metric",
    "within_cluster_sse",
    "range_query_error",
    "QueryWorkloadReport",
    "correlation_shift",
]
