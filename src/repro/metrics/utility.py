"""Analytical-utility metrics: does the release still answer questions?

Information-loss metrics measure distortion; these measure *consequence*:
the error a data analyst inherits when running standard analyses on the
release instead of the original.  Two workloads cover the common cases:

* random range (COUNT) queries over the quasi-identifiers — the standard
  workload of the anonymization literature;
* attribute-correlation preservation — how far released pairwise Pearson
  correlations drift, which is what regression-style analyses feel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..data.dataset import Microdata


@dataclass(frozen=True)
class QueryWorkloadReport:
    """Accuracy of a random range-query workload on a release.

    Attributes
    ----------
    mean_absolute_error:
        Mean |count_released - count_original| over queries.
    mean_relative_error:
        Mean |Δcount| / max(count_original, sanity) over queries.
    n_queries:
        Workload size.
    """

    mean_absolute_error: float
    mean_relative_error: float
    n_queries: int


def range_query_error(
    original: Microdata,
    released: Microdata,
    *,
    names: Sequence[str] | None = None,
    n_queries: int = 200,
    dimensions: int = 2,
    selectivity: float = 0.3,
    sanity: int = 10,
    seed: int = 0,
) -> QueryWorkloadReport:
    """COUNT-query accuracy of the release under a random workload.

    Each query picks ``dimensions`` quasi-identifiers and a random interval
    per attribute covering ``selectivity`` of its range, and compares the
    matching record counts in the original and released tables.

    Parameters
    ----------
    sanity:
        Floor of the relative-error denominator (avoids exploding error on
        near-empty queries), as customary in the range-query literature.
    """
    if original.n_records != released.n_records:
        raise ValueError("datasets must be row-aligned")
    if not 0 < selectivity <= 1:
        raise ValueError(f"selectivity must be in (0, 1], got {selectivity}")
    if n_queries < 1:
        raise ValueError(f"n_queries must be >= 1, got {n_queries}")
    if names is None:
        names = tuple(
            n for n in original.quasi_identifiers if original.spec(n).is_numeric
        )
    names = tuple(names)
    if not names:
        raise ValueError("no numeric attributes to query")
    dimensions = min(dimensions, len(names))

    rng = np.random.default_rng(seed)
    orig = np.column_stack([original.values(n) for n in names])
    rel = np.column_stack([released.values(n) for n in names])
    lo = orig.min(axis=0)
    hi = orig.max(axis=0)
    span = np.where(hi > lo, hi - lo, 1.0)

    abs_errors = np.empty(n_queries)
    rel_errors = np.empty(n_queries)
    for q in range(n_queries):
        dims = rng.choice(len(names), size=dimensions, replace=False)
        mask_orig = np.ones(original.n_records, dtype=bool)
        mask_rel = np.ones(original.n_records, dtype=bool)
        for d in dims:
            width = selectivity * span[d]
            start = lo[d] + rng.random() * (span[d] - width)
            mask_orig &= (orig[:, d] >= start) & (orig[:, d] <= start + width)
            mask_rel &= (rel[:, d] >= start) & (rel[:, d] <= start + width)
        count_orig = int(mask_orig.sum())
        count_rel = int(mask_rel.sum())
        abs_errors[q] = abs(count_rel - count_orig)
        rel_errors[q] = abs_errors[q] / max(count_orig, sanity)
    return QueryWorkloadReport(
        mean_absolute_error=float(abs_errors.mean()),
        mean_relative_error=float(rel_errors.mean()),
        n_queries=n_queries,
    )


def correlation_shift(
    original: Microdata,
    released: Microdata,
    *,
    names: Sequence[str] | None = None,
) -> float:
    """Largest absolute drift of pairwise Pearson correlations.

    Computed over all pairs of the given numeric attributes (defaults to
    numeric quasi-identifiers plus numeric confidential attributes, i.e.
    the relations an analyst of the release would model).
    """
    if original.n_records != released.n_records:
        raise ValueError("datasets must be row-aligned")
    if names is None:
        names = tuple(
            n
            for n in original.quasi_identifiers + original.confidential
            if original.spec(n).is_numeric
        )
    names = tuple(names)
    if len(names) < 2:
        raise ValueError("need at least two numeric attributes")
    orig = np.column_stack([original.values(n) for n in names])
    rel = np.column_stack([released.values(n) for n in names])
    corr_orig = _safe_corrcoef(orig)
    corr_rel = _safe_corrcoef(rel)
    return float(np.max(np.abs(corr_orig - corr_rel)))


def _safe_corrcoef(matrix: np.ndarray) -> np.ndarray:
    """Correlation matrix with constant columns treated as zero-correlated."""
    std = matrix.std(axis=0)
    safe = matrix.copy()
    constant = std == 0.0
    if constant.any():
        # Give constant columns unit noise-free variance: correlation 0.
        safe = safe + 0.0
        corr = np.zeros((matrix.shape[1], matrix.shape[1]))
        active = ~constant
        if active.sum() >= 2:
            sub = np.corrcoef(matrix[:, active], rowvar=False)
            corr[np.ix_(active, active)] = sub
        np.fill_diagonal(corr, 1.0)
        return corr
    return np.corrcoef(matrix, rowvar=False)
