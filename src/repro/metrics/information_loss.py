"""Information-loss metrics for anonymized releases.

The paper's utility evaluation (Section 8.3) rests on the *normalized Sum
of Squared Errors* of Equation (5):

.. math:: SSE = \\frac{1}{n} \\sum_{x_j \\in X} \\frac{1}{m}
          \\sum_{a^i_j \\in x_j} NED(a^i_j, (a^i_j)')^2

where NED is the Normalized Euclidean Distance between an original value
and its anonymized version — here, the absolute difference divided by the
attribute's range in the original table, which makes the score independent
of record count, attribute count and attribute scales.

The classic companions from the k-anonymity literature are also provided:
SSE/SST (the share of total variance destroyed), the discernibility metric
and the average-class-size metric C_AVG.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..data.dataset import Microdata
from ..microagg.partition import Partition


def normalized_sse(
    original: Microdata,
    released: Microdata,
    names: Sequence[str] | None = None,
) -> float:
    """Equation (5): mean squared range-normalized per-value distortion.

    Parameters
    ----------
    original, released:
        Row-aligned original and anonymized tables.
    names:
        Attributes to score; defaults to the quasi-identifiers (the only
        columns microaggregation perturbs — including unchanged columns
        would only rescale the result by m'/m).
    """
    if original.n_records != released.n_records:
        raise ValueError(
            f"original has {original.n_records} records, "
            f"released has {released.n_records}"
        )
    if names is None:
        names = original.quasi_identifiers
    names = tuple(names)
    if not names:
        raise ValueError("no attributes to score")
    total = np.zeros(original.n_records)
    for name in names:
        orig = original.values(name).astype(np.float64)
        rel = released.values(name).astype(np.float64)
        span = orig.max() - orig.min()
        if span == 0.0:
            continue  # constant column: any faithful release has zero error
        total += ((orig - rel) / span) ** 2
    return float(total.mean() / len(names))


def sse_ratio(
    original: Microdata,
    released: Microdata,
    names: Sequence[str] | None = None,
) -> float:
    """SSE / SST on standardized attributes — share of variance destroyed.

    0 means the release preserves all within-data variation, 1 means every
    attribute has collapsed to its mean (the single-cluster release).
    """
    if original.n_records != released.n_records:
        raise ValueError("datasets must be row-aligned")
    if names is None:
        names = original.quasi_identifiers
    names = tuple(names)
    if not names:
        raise ValueError("no attributes to score")
    sse = 0.0
    sst = 0.0
    for name in names:
        orig = original.values(name).astype(np.float64)
        rel = released.values(name).astype(np.float64)
        std = orig.std()
        if std == 0.0:
            continue
        sse += (((orig - rel) / std) ** 2).sum()
        sst += (((orig - orig.mean()) / std) ** 2).sum()
    if sst == 0.0:
        return 0.0
    return float(sse / sst)


def discernibility(partition: Partition) -> float:
    """Discernibility metric: sum over classes of |class|^2.

    Each record is charged the size of the class it hides in; the minimum
    ``n * k`` is attained by uniform k-sized classes.
    """
    sizes = partition.sizes().astype(np.float64)
    return float((sizes**2).sum())


def average_class_size_metric(partition: Partition, k: int) -> float:
    """C_AVG (LeFevre et al.): (n / #classes) / k — 1.0 is ideal."""
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    return float(partition.mean_size / k)


def within_cluster_sse(X: np.ndarray, partition: Partition) -> float:
    """Raw within-cluster SSE of a record matrix under a partition.

    The quantity every microaggregation heuristic minimizes; exposed for
    ablations that compare partitioners directly in geometry space.
    """
    X = np.asarray(X, dtype=np.float64)
    if X.ndim != 2:
        raise ValueError(f"X must be 2-D, got shape {X.shape}")
    if len(X) != partition.n_records:
        raise ValueError(
            f"matrix has {len(X)} rows, partition covers {partition.n_records}"
        )
    total = 0.0
    for members in partition.clusters():
        block = X[members]
        total += float(((block - block.mean(axis=0)) ** 2).sum())
    return total
