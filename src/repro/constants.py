"""Library-wide numeric constants shared across layers.

This module sits below every other package (it imports nothing from
:mod:`repro`), so the anonymization core, the privacy verifiers and the
policy machinery can all reference the same values without import cycles.
"""

from __future__ import annotations

#: Absolute tolerance applied to every t-closeness threshold comparison
#: ("achieved <= t"), absorbing the float round-off that accumulates while
#: summing EMD terms.  Result objects (`TClosenessResult.satisfies_t`), the
#: formal verifier (`repro.privacy.tcloseness.is_t_close`), the policy
#: requirement (`repro.core.policy.TCloseness`) and the release audit all
#: use this single value, so a release can never be "t-close" to one layer
#: and "not t-close" to another.
T_TOLERANCE: float = 1e-12
