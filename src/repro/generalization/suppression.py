"""Local suppression on top of global recoding.

Samarati/Sweeney-style anonymization combines recoding with suppression of
the records whose generalized quasi-identifier combination remains too
rare.  The paper's Section 4 catalogs the drawbacks of this combination
(no principled recoding/suppression trade-off, censored-data analysis);
this module implements the standard record-level variant so the baselines
and examples can quantify those drawbacks.
"""

from __future__ import annotations

import numpy as np

from .recoding import RecodedRelease


def small_class_mask(release: RecodedRelease, k: int) -> np.ndarray:
    """Boolean mask of records whose equivalence class has < k members."""
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    classes = release.classes()
    sizes = classes.sizes()
    return sizes[classes.labels] < k


def suppress_small_classes(
    release: RecodedRelease, k: int
) -> tuple[np.ndarray, float]:
    """Record-level suppression to reach k-anonymity.

    Returns
    -------
    (keep_mask, suppression_rate):
        ``keep_mask[i]`` is True when record ``i`` survives; the rate is the
        fraction of records removed.  The surviving records are k-anonymous
        under the release's recoding by construction.
    """
    drop = small_class_mask(release, k)
    return ~drop, float(drop.mean())


def suppression_feasible(
    release: RecodedRelease, k: int, max_rate: float
) -> bool:
    """Whether recoding + suppression meets k within a suppression budget.

    This is the acceptance test generalization algorithms use when allowed
    a suppression rate (e.g. "at most 1% of records may be dropped").
    """
    if not 0.0 <= max_rate <= 1.0:
        raise ValueError(f"max_rate must be in [0, 1], got {max_rate}")
    _, rate = suppress_small_classes(release, k)
    return rate <= max_rate
