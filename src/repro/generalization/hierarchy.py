"""Per-attribute generalization hierarchies.

Generalization-based anonymization (the approach the paper argues
*against*, and which this package implements as the comparison baseline)
replaces values by coarser ones along a value generalization hierarchy
(VGH).  Two hierarchy families cover the usual cases:

* :class:`NumericHierarchy` — dyadic interval hierarchies for numeric
  attributes: level 0 keeps exact values, level ℓ buckets the attribute's
  range into ``2^(n_levels - ℓ)`` equal intervals, the top level suppresses
  to the full range;
* :class:`TaxonomyHierarchy` — tree hierarchies for categorical attributes,
  wrapping a :class:`~repro.distance.taxonomy.Taxonomy`: level ℓ climbs ℓ
  edges toward the root.

Both expose the same interface: ``generalize(values, level)`` maps a column
to string labels, and ``loss(level)`` scores a level with the Loss Metric
(LM, Iyengar 2002) — the normalized width of the region a generalized value
still admits, averaged over records — which the search algorithms use to
rank feasible generalizations.
"""

from __future__ import annotations

import abc

import numpy as np

from ..distance.taxonomy import Taxonomy


class AttributeHierarchy(abc.ABC):
    """Common interface of value generalization hierarchies."""

    #: Number of generalization steps above the exact values; valid levels
    #: are ``0 .. n_levels`` inclusive (``n_levels`` = total suppression).
    n_levels: int

    def validate_level(self, level: int) -> None:
        """Raise ValueError unless ``0 <= level <= n_levels``."""
        if not 0 <= level <= self.n_levels:
            raise ValueError(
                f"level must be in [0, {self.n_levels}], got {level}"
            )

    @abc.abstractmethod
    def generalize(self, values: np.ndarray, level: int) -> np.ndarray:
        """Map raw column values to generalized labels (object array)."""

    @abc.abstractmethod
    def loss(self, level: int) -> float:
        """Loss Metric of the level in [0, 1] (0 = exact, 1 = suppressed)."""


class NumericHierarchy(AttributeHierarchy):
    """Dyadic interval hierarchy over a closed numeric range.

    Parameters
    ----------
    lo, hi:
        Domain bounds (values outside are clamped into the closed range).
    n_levels:
        Number of halving steps: level ℓ uses ``2^(n_levels - ℓ)`` equal
        bins, so level ``n_levels`` is the single bin [lo, hi].
    """

    def __init__(self, lo: float, hi: float, n_levels: int = 4) -> None:
        if not hi > lo:
            raise ValueError(f"need hi > lo, got [{lo}, {hi}]")
        if n_levels < 1:
            raise ValueError(f"n_levels must be >= 1, got {n_levels}")
        self.lo = float(lo)
        self.hi = float(hi)
        self.n_levels = int(n_levels)

    @classmethod
    def from_values(cls, values: np.ndarray, n_levels: int = 4) -> "NumericHierarchy":
        """Fit the domain bounds from a data column."""
        values = np.asarray(values, dtype=np.float64)
        if values.size == 0:
            raise ValueError("cannot fit a hierarchy to an empty column")
        lo, hi = float(values.min()), float(values.max())
        if hi == lo:
            hi = lo + 1.0  # degenerate column: any single bin works
        return cls(lo, hi, n_levels)

    def n_bins(self, level: int) -> int:
        """Number of bins at a level (0 = sentinel for exact values)."""
        self.validate_level(level)
        if level == 0:
            return 0  # sentinel: exact values, no binning
        return 2 ** (self.n_levels - level)

    def bin_indices(self, values: np.ndarray, level: int) -> np.ndarray:
        """Bin index of each value at the given level (level >= 1)."""
        self.validate_level(level)
        if level == 0:
            raise ValueError("level 0 keeps exact values; no bins")
        bins = self.n_bins(level)
        width = (self.hi - self.lo) / bins
        idx = np.floor((np.asarray(values, float) - self.lo) / width).astype(int)
        return np.clip(idx, 0, bins - 1)

    def generalize(self, values: np.ndarray, level: int) -> np.ndarray:
        self.validate_level(level)
        values = np.asarray(values, dtype=np.float64)
        if level == 0:
            return values.astype(object)
        bins = self.n_bins(level)
        width = (self.hi - self.lo) / bins
        idx = self.bin_indices(values, level)
        labels = np.array(
            [f"[{self.lo + i * width:g}, {self.lo + (i + 1) * width:g})" for i in range(bins)],
            dtype=object,
        )
        return labels[idx]

    def loss(self, level: int) -> float:
        self.validate_level(level)
        if level == 0:
            return 0.0
        return 1.0 / self.n_bins(level)

    def interval_midpoints(self, values: np.ndarray, level: int) -> np.ndarray:
        """Numeric representative (bin midpoint) of each generalized value."""
        self.validate_level(level)
        if level == 0:
            return np.asarray(values, dtype=np.float64).copy()
        bins = self.n_bins(level)
        width = (self.hi - self.lo) / bins
        idx = self.bin_indices(values, level)
        return self.lo + (idx + 0.5) * width


class TaxonomyHierarchy(AttributeHierarchy):
    """Tree hierarchy for a categorical attribute.

    Level ℓ replaces every leaf by its ancestor ℓ edges up (clamped at the
    root), so level ``taxonomy.height`` maps everything to the root.
    The Loss Metric of a generalized node is
    ``(leaves_under(node) - 1) / (n_leaves - 1)``.
    """

    def __init__(self, taxonomy: Taxonomy) -> None:
        self.taxonomy = taxonomy
        self.n_levels = taxonomy.height
        self._n_leaves = len(taxonomy.leaves)

    def generalize(self, values: np.ndarray, level: int) -> np.ndarray:
        self.validate_level(level)
        values = np.asarray(values)
        cache: dict[str, str] = {}
        out = np.empty(len(values), dtype=object)
        for i, raw in enumerate(values):
            label = str(raw)
            if label not in cache:
                cache[label] = self.taxonomy.generalize(label, level)
            out[i] = cache[label]
        return out

    def loss(self, level: int) -> float:
        self.validate_level(level)
        if self._n_leaves == 1:
            return 0.0
        total = 0.0
        for leaf in self.taxonomy.leaves:
            node = self.taxonomy.generalize(leaf, level)
            total += (len(self.taxonomy.leaves_under(node)) - 1) / (
                self._n_leaves - 1
            )
        return total / self._n_leaves
