"""Global recoding: apply one generalization level per quasi-identifier.

A *full-domain* (global) recoding replaces every value of an attribute by
its generalization at one fixed level — the search space Incognito walks.
:class:`RecodedRelease` is the result: generalized quasi-identifier labels,
the equivalence classes they induce, and the release's privacy/loss scores.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from ..core.confidential import ConfidentialModel
from ..data.dataset import Microdata
from ..microagg.partition import Partition
from .hierarchy import AttributeHierarchy


@dataclass(frozen=True)
class RecodedRelease:
    """A generalized view of a dataset under one recoding vector.

    Attributes
    ----------
    data:
        The original microdata (confidential values are read from here —
        generalization does not perturb them).
    levels:
        Generalization level applied to each quasi-identifier.
    labels:
        Generalized label column per quasi-identifier (object arrays).
    """

    data: Microdata
    levels: Mapping[str, int]
    labels: Mapping[str, np.ndarray]

    def classes(self) -> Partition:
        """Equivalence classes induced by the generalized labels."""
        names = list(self.labels)
        keys = list(zip(*(self.labels[name] for name in names)))
        index: dict[tuple, int] = {}
        out = np.empty(len(keys), dtype=np.int64)
        for i, key in enumerate(keys):
            out[i] = index.setdefault(key, len(index))
        return Partition(out)

    def k_level(self) -> int:
        """Achieved k-anonymity of the recoded view."""
        return self.classes().min_size

    def t_level(self, *, emd_mode: str = "distinct") -> float:
        """Achieved t-closeness of the recoded view."""
        model = ConfidentialModel(self.data, emd_mode=emd_mode)
        return float(
            max(
                model.cluster_emd(members)
                for members in self.classes().clusters()
            )
        )

    def rows(self) -> list[tuple]:
        """Release rows: generalized QIs followed by confidential values."""
        names = list(self.labels)
        conf = [self.data.labels(c) for c in self.data.confidential]
        cols = [self.labels[n] for n in names] + conf
        return list(zip(*cols))


def recode(
    data: Microdata,
    hierarchies: Mapping[str, AttributeHierarchy],
    levels: Mapping[str, int],
) -> RecodedRelease:
    """Apply a full-domain recoding vector.

    Parameters
    ----------
    data:
        Original microdata.
    hierarchies:
        Hierarchy per quasi-identifier (every QI must be covered).
    levels:
        Generalization level per quasi-identifier.
    """
    missing = set(data.quasi_identifiers) - set(hierarchies)
    if missing:
        raise ValueError(f"no hierarchy for quasi-identifier(s): {sorted(missing)}")
    unknown = set(levels) - set(hierarchies)
    if unknown:
        raise ValueError(f"levels given for unknown attributes: {sorted(unknown)}")
    labels = {}
    for name in data.quasi_identifiers:
        level = levels.get(name, 0)
        hierarchy = hierarchies[name]
        hierarchy.validate_level(level)
        spec = data.spec(name)
        column = data.labels(name) if spec.is_categorical else data.values(name)
        labels[name] = hierarchy.generalize(column, level)
    return RecodedRelease(data=data, levels=dict(levels), labels=labels)


def recoding_loss(
    hierarchies: Mapping[str, AttributeHierarchy], levels: Mapping[str, int]
) -> float:
    """Average Loss Metric of a recoding vector (the search's objective)."""
    if not levels:
        return 0.0
    return float(
        np.mean([hierarchies[name].loss(level) for name, level in levels.items()])
    )
