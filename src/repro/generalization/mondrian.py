"""Mondrian multidimensional partitioning, adapted to t-closeness.

Mondrian (LeFevre, DeWitt & Ramakrishnan, ICDE 2006) greedily bisects the
record set: pick the quasi-identifier with the widest normalized range
inside the current region, split at its median, recurse while both halves
remain admissible.  For plain k-anonymity "admissible" means >= k records;
the t-closeness adaptation (used as the generalization baseline in Li et
al.'s TKDE 2010 evaluation, and the natural comparator for this paper)
additionally requires both halves to keep their confidential distribution
within EMD t of the full table.

Because the whole dataset trivially satisfies t-closeness (EMD 0) and
splits are only taken when both children comply, the final partition always
satisfies both constraints — the recursion just stops earlier when t is
strict, yielding the larger classes (and worse utility) that motivate the
paper's microaggregation approach.
"""

from __future__ import annotations

import numpy as np

from ..core.confidential import ConfidentialModel
from ..data.dataset import Microdata
from ..microagg.partition import Partition


def mondrian_partition(
    data: Microdata,
    k: int,
    t: float | None = None,
    *,
    emd_mode: str = "distinct",
) -> Partition:
    """Greedy median-split partition satisfying k-anonymity (and t-closeness).

    Parameters
    ----------
    data:
        Microdata with quasi-identifier roles (numeric or ordinal QIs; the
        median-split strategy needs ordered domains).
    k:
        Minimum records per region.
    t:
        Optional t-closeness level; ``None`` reproduces classic Mondrian.
    emd_mode:
        EMD flavour for the t-closeness admission test.

    Returns
    -------
    Partition
        Regions of the recursive bisection (strict mode: every region has
        between k and 2k-1 records when t is None and data has no heavy
        ties; ties can force larger leaf regions).
    """
    n = data.n_records
    if n == 0:
        raise ValueError("dataset is empty")
    if not 1 <= k <= n:
        raise ValueError(f"k must be in [1, {n}], got {k}")
    if t is not None and t < 0:
        raise ValueError(f"t must be >= 0, got {t}")

    qi = data.matrix(data.quasi_identifiers)
    spans = qi.max(axis=0) - qi.min(axis=0)
    spans[spans == 0.0] = 1.0
    normalized = (qi - qi.min(axis=0)) / spans

    model = ConfidentialModel(data, emd_mode=emd_mode) if t is not None else None

    def admissible(members: np.ndarray) -> bool:
        if len(members) < k:
            return False
        if model is not None and model.cluster_emd(members) > t + 1e-12:
            return False
        return True

    labels = np.zeros(n, dtype=np.int64)
    next_label = 1
    stack: list[np.ndarray] = [np.arange(n)]
    final_regions: list[np.ndarray] = []

    while stack:
        region = stack.pop()
        split = _best_split(normalized, region, admissible)
        if split is None:
            final_regions.append(region)
            continue
        left, right = split
        stack.append(left)
        stack.append(right)

    for g, region in enumerate(final_regions):
        labels[region] = g
    partition = Partition(labels)
    partition.validate_min_size(k)
    return partition


def _best_split(
    normalized: np.ndarray,
    region: np.ndarray,
    admissible,
) -> tuple[np.ndarray, np.ndarray] | None:
    """Try dimensions in decreasing range order; return the first legal cut."""
    sub = normalized[region]
    ranges = sub.max(axis=0) - sub.min(axis=0)
    for dim in np.argsort(-ranges, kind="stable"):
        if ranges[dim] == 0.0:
            break  # all remaining dims are constant in this region
        values = sub[:, dim]
        median = np.median(values)
        left_mask = values < median
        right_mask = ~left_mask
        # Median may coincide with the minimum under ties; fall back to <=.
        if not left_mask.any() or not right_mask.any():
            left_mask = values <= median
            right_mask = ~left_mask
            if not left_mask.any() or not right_mask.any():
                continue
        left, right = region[left_mask], region[right_mask]
        if admissible(left) and admissible(right):
            return left, right
    return None
