"""SABRE — Sensitive Attribute Bucketization and REdistribution.

SABRE (Cao, Karras, Kalnis & Tan, VLDB Journal 2011) is the main algorithm
designed *specifically* for t-closeness prior to this paper, and its closest
conceptual relative: it first splits the table into buckets by confidential
value, then assembles equivalence classes by drawing from every bucket a
number of records proportional to the bucket's share of the table.

This module reimplements SABRE's two phases in the form the paper compares
against (Section 3):

* **Bucketization** — a greedy scan over the ordered confidential domain
  accumulates distinct values into the current bucket until the bucket's
  probability mass reaches the 1/B target, where ``B`` is the analytic
  bucket count required for the EMD budget t.  Because a bucket must not
  split a tied value, greedy buckets can overshoot their mass target and
  leave more (smaller) buckets than the uniform construction — exactly the
  behaviour the paper criticizes ("the buckets in SABRE are generated in an
  iterative greedy manner which may yield more buckets than our algorithm
  ... a greater number of buckets leads to equivalence classes with more
  records and, thus, to more information loss").
* **Redistribution** — equivalence classes are seeded MDAV-style (farthest
  record from the remaining centroid) and filled with each bucket's fair
  share of records (largest-remainder allocation), each share picked by
  quasi-identifier proximity to the seed.  A final safety merge (Algorithm
  1's phase) repairs the rare classes whose EMD still exceeds t, so the
  returned result always satisfies the model.
"""

from __future__ import annotations

import numpy as np

from ..core.base import TClosenessResult
from ..core.bounds import required_cluster_size
from ..core.confidential import ConfidentialModel
from ..core.merge import merge_to_t_closeness
from ..data.attributes import AttributeKind
from ..data.dataset import Microdata
from ..distance.records import encode_mixed, sq_distances_to
from ..microagg.partition import Partition


def sabre(
    data: Microdata,
    k: int,
    t: float,
    *,
    emd_mode: str = "distinct",
) -> TClosenessResult:
    """Run SABRE-style bucketization + redistribution.

    Parameters
    ----------
    data:
        Microdata with one rankable confidential attribute.
    k:
        k-anonymity floor for the assembled classes.
    t:
        t-closeness level.
    emd_mode:
        EMD flavour for verification/merging.

    Returns
    -------
    TClosenessResult
        ``info`` records ``n_buckets`` and ``n_merges`` (safety repairs).
    """
    n = data.n_records
    if n == 0:
        raise ValueError("dataset is empty")
    if not 1 <= k <= n:
        raise ValueError(f"k must be in [1, {n}], got {k}")
    if t < 0:
        raise ValueError(f"t must be >= 0, got {t}")
    if len(data.confidential) != 1:
        raise ValueError("sabre requires exactly one confidential attribute")
    conf_name = data.confidential[0]
    if data.spec(conf_name).kind is AttributeKind.NOMINAL:
        raise ValueError("sabre requires a rankable confidential attribute")

    X = encode_mixed(data, data.quasi_identifiers)
    conf = data.values(conf_name)

    # ---- Phase 1: greedy bucketization over the ordered domain ------------
    target_buckets = required_cluster_size(n, t)
    buckets = _greedy_buckets(conf, target_buckets)

    # ---- Phase 2: proportional redistribution into classes ----------------
    # Class count: each class needs >= k records and roughly one record per
    # bucket, so it is bounded both by the k floor and the bucket count.
    n_classes = max(1, min(n // max(k, len(buckets)), min(len(b) for b in buckets)))

    pools = [b.copy() for b in buckets]
    alive = np.ones(n, dtype=bool)
    clusters: list[np.ndarray] = []
    for j in range(n_classes):
        classes_left = n_classes - j
        alive_idx = np.flatnonzero(alive)
        centroid = X[alive_idx].mean(axis=0)
        seed = int(alive_idx[np.argmax(sq_distances_to(X[alive_idx], centroid))])
        # This class's total is its fair share of what remains, so class
        # totals differ by at most one and all stay >= k.  Each bucket
        # contributes its proportional share (floors first, the deficit
        # covered by the buckets with the largest fractional parts).
        total = int(alive_idx.size) if classes_left == 1 else alive_idx.size // classes_left
        shares = np.array([len(pool) / classes_left for pool in pools])
        takes = np.floor(shares).astype(np.int64)
        deficit = total - int(takes.sum())
        if deficit > 0:
            order = np.argsort(-(shares - takes), kind="stable")
            for b in order:
                if deficit == 0:
                    break
                if takes[b] < len(pools[b]):
                    takes[b] += 1
                    deficit -= 1
        chosen: list[int] = []
        for b, pool in enumerate(pools):
            for _ in range(min(int(takes[b]), len(pool))):
                pos = int(np.argmin(sq_distances_to(X[pool], X[seed])))
                chosen.append(int(pool[pos]))
                pools[b] = pool = np.delete(pool, pos)
        members = np.asarray(chosen, dtype=np.int64)
        alive[members] = False
        clusters.append(members)

    partition = Partition.from_clusters(clusters, n)
    model = ConfidentialModel(data, emd_mode=emd_mode)
    partition, emds, n_merges = merge_to_t_closeness(
        data, partition, t, model=model, qi_matrix=X
    )
    return TClosenessResult(
        algorithm="sabre",
        k=k,
        t=t,
        partition=partition,
        cluster_emds=emds,
        info={
            "n_buckets": len(buckets),
            "n_classes_before_merge": n_classes,
            "n_merges": n_merges,
            "emd_mode": emd_mode,
        },
    )


def _greedy_buckets(conf: np.ndarray, target_buckets: int) -> list[np.ndarray]:
    """Greedy mass-based bucketization that never splits a tied value."""
    order = np.argsort(conf, kind="stable")
    n = len(conf)
    mass_target = 1.0 / target_buckets
    buckets: list[np.ndarray] = []
    current: list[int] = []
    mass = 0.0
    i = 0
    while i < n:
        # Consume the whole tie-group of the next distinct value.
        j = i
        while j < n and conf[order[j]] == conf[order[i]]:
            j += 1
        current.extend(order[i:j].tolist())
        mass += (j - i) / n
        i = j
        if mass >= mass_target - 1e-12 and i < n:
            buckets.append(np.asarray(current, dtype=np.int64))
            current, mass = [], 0.0
    if current:
        buckets.append(np.asarray(current, dtype=np.int64))
    return buckets


