"""Generalization/suppression baselines the paper compares against."""

from .hierarchy import AttributeHierarchy, NumericHierarchy, TaxonomyHierarchy
from .incognito import IncognitoResult, incognito
from .mondrian import mondrian_partition
from .recoding import RecodedRelease, recode, recoding_loss
from .sabre import sabre
from .suppression import (
    small_class_mask,
    suppress_small_classes,
    suppression_feasible,
)

__all__ = [
    "AttributeHierarchy",
    "NumericHierarchy",
    "TaxonomyHierarchy",
    "recode",
    "recoding_loss",
    "RecodedRelease",
    "suppress_small_classes",
    "small_class_mask",
    "suppression_feasible",
    "mondrian_partition",
    "incognito",
    "IncognitoResult",
    "sabre",
]
