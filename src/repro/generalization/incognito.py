"""Incognito-style full-domain generalization search with t-closeness.

Incognito (LeFevre, DeWitt & Ramakrishnan, SIGMOD 2005) finds all *minimal*
full-domain generalizations satisfying k-anonymity by a bottom-up,
level-wise walk of the generalization lattice, pruning upward thanks to
monotonicity: if a recoding vector satisfies the model, so does every more
general vector.  Li et al.'s original t-closeness paper (ICDE 2007) obtains
its algorithm by adding the t-closeness test to exactly this search — both
k-anonymity and EMD-based t-closeness are monotone along generalization
(coarser recodings merge classes, and merging classes can only move each
class's distribution toward the table's).

This implementation walks the product lattice of per-attribute levels
breadth-first from the most specific vector, with monotone pruning of
dominated vectors; for the handful of quasi-identifiers and levels typical
of full-domain recoding this is exact and fast.  (The original paper adds a
subset-lattice pre-filtering phase that accelerates — but does not change —
the result; it is omitted here and noted in DESIGN.md.)
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Mapping

from ..data.dataset import Microdata
from .hierarchy import AttributeHierarchy
from .recoding import RecodedRelease, recode, recoding_loss


@dataclass(frozen=True)
class IncognitoResult:
    """Outcome of the lattice search.

    Attributes
    ----------
    release:
        The feasible recoding with the smallest Loss Metric.
    minimal_vectors:
        All minimal feasible recoding vectors (no strictly-less-general
        feasible vector exists), as level dicts.
    n_checked:
        Number of lattice nodes actually evaluated (pruning diagnostic).
    """

    release: RecodedRelease
    minimal_vectors: tuple[dict[str, int], ...]
    n_checked: int


def incognito(
    data: Microdata,
    hierarchies: Mapping[str, AttributeHierarchy],
    k: int,
    t: float | None = None,
    *,
    emd_mode: str = "distinct",
) -> IncognitoResult:
    """Find the minimal full-domain recoding meeting k-anonymity (+ t).

    Parameters
    ----------
    data:
        Microdata with quasi-identifier and confidential roles.
    hierarchies:
        One :class:`AttributeHierarchy` per quasi-identifier.
    k:
        k-anonymity requirement.
    t:
        Optional t-closeness requirement (EMD threshold); ``None`` checks
        k-anonymity only.
    emd_mode:
        EMD flavour for the t-closeness test.

    Raises
    ------
    ValueError
        If even the fully-suppressed vector fails (cannot happen for
        ``k <= n``, since one single class contains all records and has
        EMD zero).
    """
    names = list(data.quasi_identifiers)
    if not names:
        raise ValueError("dataset has no quasi-identifiers")
    missing = set(names) - set(hierarchies)
    if missing:
        raise ValueError(f"no hierarchy for quasi-identifier(s): {sorted(missing)}")
    if not 1 <= k <= data.n_records:
        raise ValueError(f"k must be in [1, {data.n_records}], got {k}")
    if t is not None and t < 0:
        raise ValueError(f"t must be >= 0, got {t}")

    max_levels = [hierarchies[name].n_levels for name in names]

    def satisfies(vector: tuple[int, ...]) -> tuple[bool, RecodedRelease]:
        release = recode(
            data, hierarchies, {name: lv for name, lv in zip(names, vector)}
        )
        if release.k_level() < k:
            return False, release
        if t is not None and release.t_level(emd_mode=emd_mode) > t + 1e-12:
            return False, release
        return True, release

    # Level-wise walk: frontier of height h holds all not-yet-pruned
    # vectors whose coordinates sum to h.
    feasible: list[tuple[tuple[int, ...], RecodedRelease]] = []
    dominated: set[tuple[int, ...]] = set()
    n_checked = 0
    all_vectors = sorted(
        product(*(range(m + 1) for m in max_levels)), key=sum
    )
    for vector in all_vectors:
        if vector in dominated:
            continue
        n_checked += 1
        ok, release = satisfies(vector)
        if ok:
            feasible.append((vector, release))
            # Monotonicity: every more general vector also satisfies the
            # model; mark the up-set as dominated so it is never evaluated.
            _mark_upset(vector, max_levels, dominated)

    if not feasible:  # pragma: no cover - the all-suppressed node always passes
        raise ValueError("no feasible generalization found")

    minimal = tuple(
        {name: lv for name, lv in zip(names, vector)} for vector, _ in feasible
    )
    best_release = min(
        (release for _, release in feasible),
        key=lambda r: recoding_loss(hierarchies, r.levels),
    )
    return IncognitoResult(
        release=best_release, minimal_vectors=minimal, n_checked=n_checked
    )


def _mark_upset(
    vector: tuple[int, ...],
    max_levels: list[int],
    dominated: set[tuple[int, ...]],
) -> None:
    """Add every strictly-more-general vector to the dominated set."""
    ranges = [range(v, m + 1) for v, m in zip(vector, max_levels)]
    for candidate in product(*ranges):
        if candidate != vector:
            dominated.add(candidate)
