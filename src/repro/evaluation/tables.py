"""Plain-text table rendering in the paper's layout.

The benchmark harness prints its results in the same shape as the paper's
tables so paper-vs-measured comparison is a visual diff:
Tables 1-3 are (k rows) x (t columns, one sub-column per dataset) grids of
"min/avg" cluster sizes; the figures become one-row-per-t series.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from .sweep import CellResult


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Align a header + rows matrix into a monospace table."""
    cells = [list(map(str, headers))] + [list(map(str, row)) for row in rows]
    widths = [max(len(row[c]) for row in cells) for c in range(len(headers))]
    lines = []
    for r, row in enumerate(cells):
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
        if r == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def format_size_table(
    results: Mapping[str, Mapping[tuple[int, float], CellResult]],
    ks: Sequence[int],
    ts: Sequence[float],
) -> str:
    """Render a Tables 1-3 style grid.

    Parameters
    ----------
    results:
        ``{dataset_name: {(k, t): CellResult}}`` — typically MCD and HCD.
    ks, ts:
        Row and column orders.
    """
    datasets = list(results)
    headers = ["k"] + [f"t={t:g} {d}" for t in ts for d in datasets]
    rows = []
    for k in ks:
        row: list[object] = [f"k={k}"]
        for t in ts:
            for dataset in datasets:
                cell = results[dataset].get((k, t))
                row.append(cell.size_cell if cell is not None else "-")
        rows.append(row)
    return format_table(headers, rows)


def format_series_table(
    series: Mapping[str, Mapping[float, float]],
    ts: Sequence[float],
    *,
    value_format: str = "{:.4f}",
    t_label: str = "t",
) -> str:
    """Render a Figures 5-6 style series: one row per t, one column per line."""
    names = list(series)
    headers = [t_label] + names
    rows = []
    for t in ts:
        row: list[object] = [f"{t:g}"]
        for name in names:
            value = series[name].get(t)
            row.append(value_format.format(value) if value is not None else "-")
        rows.append(row)
    return format_table(headers, rows)
