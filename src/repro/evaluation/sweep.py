"""Parameter-sweep runner shared by the benchmark harness.

Every table and figure in the paper's Section 8 is a sweep over (algorithm,
data set, k, t); this module runs one cell and packages exactly the
quantities the paper reports: minimum and average actual cluster size
(Tables 1-3), wall-clock run time (Figure 5) and normalized SSE
(Figures 6-7).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Iterable, Mapping

from ..core.anonymizer import resolve_method
from ..core.base import TClosenessResult
from ..data.dataset import Microdata
from ..metrics.information_loss import normalized_sse
from ..microagg.aggregate import aggregate_partition


@dataclass(frozen=True)
class CellResult:
    """Everything the paper reports about one (algorithm, k, t) cell."""

    algorithm: str
    k: int
    t: float
    min_size: int
    avg_size: float
    n_clusters: int
    max_emd: float
    satisfies_t: bool
    sse: float
    runtime_s: float

    @property
    def size_cell(self) -> str:
        """Tables 1-3 cell format: "min/avg" (avg rounded like the paper)."""
        avg = self.avg_size
        avg_str = f"{avg:.0f}" if abs(avg - round(avg)) < 0.05 else f"{avg:.1f}"
        return f"{self.min_size}/{avg_str}"


def run_cell(
    data: Microdata,
    algorithm: str | Callable[..., TClosenessResult],
    k: int,
    t: float,
    **kwargs: object,
) -> CellResult:
    """Run one algorithm at one (k, t) and measure everything at once.

    Parameters
    ----------
    data:
        Evaluation dataset (roles assigned).
    algorithm:
        Any registered method name (see ``repro.METHODS``) or any callable
        with the same signature — baselines like
        :func:`repro.generalization.sabre` plug in directly.
    k, t:
        The cell's privacy parameters.
    kwargs:
        Forwarded to the algorithm.
    """
    if isinstance(algorithm, str):
        fn = resolve_method(algorithm)
        name = algorithm
    else:
        fn = algorithm
        name = getattr(algorithm, "__name__", str(algorithm))

    start = time.perf_counter()
    result = fn(data, k, t, **kwargs)
    runtime = time.perf_counter() - start

    release = aggregate_partition(data, result.partition)
    return CellResult(
        algorithm=name,
        k=k,
        t=t,
        min_size=result.min_cluster_size,
        avg_size=result.mean_cluster_size,
        n_clusters=result.partition.n_clusters,
        max_emd=result.max_emd,
        satisfies_t=result.satisfies_t,
        sse=normalized_sse(data, release),
        runtime_s=runtime,
    )


def sweep(
    data: Microdata,
    algorithm: str | Callable[..., TClosenessResult],
    ks: Iterable[int],
    ts: Iterable[float],
    **kwargs: object,
) -> Mapping[tuple[int, float], CellResult]:
    """Run a full (k, t) grid; returns cells keyed by (k, t)."""
    out: dict[tuple[int, float], CellResult] = {}
    for k in ks:
        for t in ts:
            out[(k, t)] = run_cell(data, algorithm, k, t, **kwargs)
    return out
