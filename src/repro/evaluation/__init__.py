"""Experiment harness: parameter sweeps and paper-style table rendering."""

from .sweep import CellResult, run_cell, sweep
from .tables import format_series_table, format_size_table, format_table

__all__ = [
    "CellResult",
    "run_cell",
    "sweep",
    "format_table",
    "format_size_table",
    "format_series_table",
]
