"""Extensions beyond the paper's evaluation (its §9 research directions)."""

from .dp import (
    dp_microaggregated_release,
    expected_noise_reduction,
    insensitive_partition,
)

__all__ = [
    "insensitive_partition",
    "dp_microaggregated_release",
    "expected_noise_reduction",
]
