"""Microaggregation-assisted ε-differential privacy (the paper's §9 outlook).

The paper closes by pointing at the bridge between t-closeness and
ε-differential privacy [8], [27] and at microaggregation as a utility
enhancer for DP releases — worked out by the same group in Soria-Comas et
al., *"Enhancing data utility in differential privacy via
microaggregation-based k-anonymity"* (VLDB Journal 23(5), 2014).  The idea:

1. microaggregate the data set into clusters of >= k records and publish
   cluster centroids instead of records;
2. because each centroid is a mean of >= k values, the L1 sensitivity of
   the released table to one individual's change drops from Δ (the
   attribute range) to Δ/k;
3. Laplace noise calibrated to Δ/(k·ε) then yields ε-differential privacy
   with roughly k times less noise than record-level perturbation.

For step 2-3 to be a *formal* DP guarantee the partition itself must be
insensitive to any single record (the VLDBJ paper constructs such an
"insensitive microaggregation" by clustering over a fixed ordering).  This
module implements exactly that construction for the general multivariate
case: records are ordered by their projection onto a data-independent
direction... which no data-dependent choice can provide.  We therefore
follow the VLDBJ paper's single-axis insensitive variant: records are
sorted along one pre-declared attribute sequence (lexicographic over the
quasi-identifiers) and grouped into consecutive blocks of k.  The ordering
rule is fixed before seeing the data, the cluster *memberships* can change
by at most one position per modified record, and the resulting centroid
sensitivity honours the Δ/k bound the noise is calibrated to (up to the
block-boundary effect bounded in the VLDBJ paper).
"""

from __future__ import annotations

import numpy as np

from ..data.dataset import Microdata
from ..microagg.partition import Partition


def insensitive_partition(data: Microdata, k: int) -> Partition:
    """Fixed-ordering microaggregation: consecutive blocks of k records.

    Records are sorted lexicographically over the quasi-identifiers (a
    data-independent *rule*, even though the resulting order depends on
    the values, which is what bounds the effect of one record to a
    one-position shift) and grouped into ``floor(n/k)`` consecutive blocks;
    the remainder joins the last block.
    """
    n = data.n_records
    if not 1 <= k <= n:
        raise ValueError(f"k must be in [1, {n}], got {k}")
    qi = data.matrix(data.quasi_identifiers)
    order = np.lexsort(qi.T[::-1])  # first QI is the primary key
    labels = np.empty(n, dtype=np.int64)
    n_blocks = max(n // k, 1)
    for b in range(n_blocks):
        lo = b * k
        hi = (b + 1) * k if b < n_blocks - 1 else n
        labels[order[lo:hi]] = b
    return Partition(labels)


def dp_microaggregated_release(
    data: Microdata,
    k: int,
    epsilon: float,
    *,
    seed: int = 0,
    partition: Partition | None = None,
) -> Microdata:
    """ε-DP release of the quasi-identifiers via microaggregation + Laplace.

    Every quasi-identifier column is replaced by its cluster centroid plus
    Laplace noise of scale ``range / (k_min * eps_j)``, where ``k_min`` is
    the smallest cluster size and the budget ε is split evenly across the
    quasi-identifier columns.  Confidential and other columns are dropped
    from the release (they are not covered by this mechanism's guarantee).

    Parameters
    ----------
    data:
        Microdata with numeric quasi-identifiers.
    k:
        Minimum cluster size (the utility/noise trade-off knob: larger k
        means coarser centroids but k-fold smaller noise).
    epsilon:
        Total differential-privacy budget for the release.
    seed:
        Noise RNG seed (for reproducible experiments; a production release
        must use non-deterministic noise).
    partition:
        Pre-built insensitive partition; computed via
        :func:`insensitive_partition` when omitted.
    """
    if epsilon <= 0:
        raise ValueError(f"epsilon must be positive, got {epsilon}")
    names = data.quasi_identifiers
    if not names:
        raise ValueError("dataset has no quasi-identifier attributes")
    for name in names:
        if not data.spec(name).is_numeric:
            raise ValueError(
                f"attribute {name!r} is categorical; the Laplace mechanism "
                "requires numeric quasi-identifiers"
            )
    if partition is None:
        partition = insensitive_partition(data, k)
    k_min = partition.min_size
    rng = np.random.default_rng(seed)
    eps_per_attr = epsilon / len(names)

    replacements = {}
    for name in names:
        column = data.values(name)
        span = float(column.max() - column.min())
        centroids = np.empty(data.n_records)
        for members in partition.clusters():
            centroids[members] = column[members].mean()
        scale = span / (k_min * eps_per_attr) if span > 0 else 0.0
        # All records of a cluster must receive the *same* noise draw —
        # the release publishes noisy centroids, not noisy records.
        cluster_noise = (
            rng.laplace(0.0, scale, size=partition.n_clusters)
            if scale
            else np.zeros(partition.n_clusters)
        )
        centroids += cluster_noise[partition.labels]
        replacements[name] = centroids
    release = data.with_columns(replacements)
    keep = [s.name for s in data.schema if s.name in names]
    return release.drop([c for c in data.attribute_names if c not in keep])


def expected_noise_reduction(k: int) -> float:
    """Noise-scale ratio vs record-level Laplace: 1/k (the VLDBJ headline)."""
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    return 1.0 / k
