"""t-Closeness verification on released microdata.

Checks Definition 2 of the paper directly: for every equivalence class of
the released table, the EMD between the class's confidential distribution
and the full table's must be at most t.  Crucially, the *reference*
distribution is taken from the released table itself — released
confidential values are unperturbed under microaggregation, so this equals
the original distribution — making the check self-contained on the release.
"""

from __future__ import annotations

import numpy as np

from ..constants import T_TOLERANCE
from ..core.confidential import ConfidentialModel
from ..data.dataset import Microdata
from ..microagg.partition import Partition
from .kanonymity import equivalence_classes


def class_emds(
    data: Microdata,
    *,
    classes: Partition | None = None,
    emd_mode: str = "distinct",
) -> np.ndarray:
    """Per-class EMD to the full table (max over confidential attributes).

    Uses the dense (``sparse=False``) evaluation: this is the formal
    verifier, and its boolean verdicts must apply exactly the Definition-2
    arithmetic the anonymization algorithms enforced, not a
    last-ulp-different fast path.
    """
    if classes is None:
        classes = equivalence_classes(data)
    model = ConfidentialModel(data, emd_mode=emd_mode)
    return model.partition_emds(list(classes.clusters()), sparse=False)


def t_closeness_level(
    data: Microdata,
    *,
    classes: Partition | None = None,
    emd_mode: str = "distinct",
) -> float:
    """The smallest t for which the release satisfies t-closeness."""
    return float(class_emds(data, classes=classes, emd_mode=emd_mode).max())


def is_t_close(
    data: Microdata,
    t: float,
    *,
    classes: Partition | None = None,
    emd_mode: str = "distinct",
) -> bool:
    """Whether every equivalence class is within EMD t of the full table.

    The threshold comparison uses the library-wide
    :data:`~repro.constants.T_TOLERANCE` shared with
    ``TClosenessResult.satisfies_t`` and the policy audit.
    """
    if t < 0:
        raise ValueError(f"t must be >= 0, got {t}")
    return (
        t_closeness_level(data, classes=classes, emd_mode=emd_mode)
        <= t + T_TOLERANCE
    )
