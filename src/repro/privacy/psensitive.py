"""p-Sensitive k-anonymity verification (Truta & Vinay, PDM 2006).

A k-anonymous table is p-sensitive when every equivalence class contains at
least p *distinct* values for each confidential attribute.  It is the
weakest of the attribute-disclosure refinements (distinct l-diversity with
l = p); the paper cites it as the one refinement microaggregation had
already been adapted to before this work.
"""

from __future__ import annotations

from ..data.dataset import Microdata
from ..microagg.partition import Partition
from .kanonymity import equivalence_classes
from .ldiversity import distinct_l_diversity


def p_sensitivity_level(
    data: Microdata, *, classes: Partition | None = None
) -> int:
    """The largest p such that the release is p-sensitive."""
    if classes is None:
        classes = equivalence_classes(data)
    return distinct_l_diversity(data, classes=classes)


def is_p_sensitive_k_anonymous(
    data: Microdata,
    p: int,
    k: int,
    *,
    classes: Partition | None = None,
) -> bool:
    """Whether the release is simultaneously k-anonymous and p-sensitive."""
    if p < 1:
        raise ValueError(f"p must be >= 1, got {p}")
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if classes is None:
        classes = equivalence_classes(data)
    if classes.min_size < k:
        return False
    return p_sensitivity_level(data, classes=classes) >= p
