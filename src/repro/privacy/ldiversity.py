"""l-Diversity verification (Machanavajjhala et al., TKDD 2007).

l-Diversity was the first refinement of k-anonymity against attribute
disclosure: each equivalence class must contain at least l "well
represented" confidential values.  Three instantiations are implemented:

* **distinct** l-diversity — at least l distinct values per class;
* **entropy** l-diversity — the entropy of each class's confidential
  distribution is at least ``log(l)`` (reported as ``exp(entropy)``);
* **recursive (c, l)** — after sorting the class's value counts
  descending, ``r_1 < c * (r_l + r_{l+1} + ... + r_m)``: the most frequent
  value is not too dominant even after discarding the l-1 runner-ups.

The paper adopts t-closeness instead because none of these bounds how far a
class's distribution may drift from the table's; the verifiers here are
what the comparison examples and the audit report are built on.
"""

from __future__ import annotations

import numpy as np

from ..data.dataset import Microdata
from ..microagg.partition import Partition
from .kanonymity import equivalence_classes


def _class_value_counts(
    data: Microdata, attribute: str, classes: Partition
) -> list[np.ndarray]:
    values = data.values(attribute)
    out = []
    for members in classes.clusters():
        _, counts = np.unique(values[members], return_counts=True)
        out.append(counts)
    return out


def _resolve_classes(data: Microdata, classes: Partition | None) -> Partition:
    return classes if classes is not None else equivalence_classes(data)


def _confidential_attributes(data: Microdata, attribute: str | None) -> tuple[str, ...]:
    if attribute is not None:
        data.spec(attribute)
        return (attribute,)
    if not data.confidential:
        raise ValueError("dataset declares no confidential attributes")
    return data.confidential


def distinct_l_diversity(
    data: Microdata,
    attribute: str | None = None,
    *,
    classes: Partition | None = None,
) -> int:
    """Smallest number of distinct confidential values in any class.

    With several confidential attributes the worst (minimum) level across
    attributes is returned.
    """
    classes = _resolve_classes(data, classes)
    level = None
    for name in _confidential_attributes(data, attribute):
        counts = _class_value_counts(data, name, classes)
        attr_level = min(len(c) for c in counts)
        level = attr_level if level is None else min(level, attr_level)
    if level is None:
        raise ValueError("no confidential attributes to evaluate")
    return int(level)


def entropy_l_diversity(
    data: Microdata,
    attribute: str | None = None,
    *,
    classes: Partition | None = None,
) -> float:
    """min over classes of exp(Shannon entropy) — the "effective" l.

    A class where one value holds all the mass scores 1.0; a class with l
    equiprobable values scores l.
    """
    classes = _resolve_classes(data, classes)
    level = None
    for name in _confidential_attributes(data, attribute):
        for counts in _class_value_counts(data, name, classes):
            p = counts / counts.sum()
            entropy = float(-(p * np.log(p)).sum())
            effective = float(np.exp(entropy))
            level = effective if level is None else min(level, effective)
    if level is None:
        raise ValueError("no confidential attributes to evaluate")
    return level


def is_recursive_cl_diverse(
    data: Microdata,
    c: float,
    l: int,
    attribute: str | None = None,
    *,
    classes: Partition | None = None,
) -> bool:
    """Recursive (c, l)-diversity check for every class and attribute."""
    if c <= 0:
        raise ValueError(f"c must be positive, got {c}")
    if l < 1:
        raise ValueError(f"l must be >= 1, got {l}")
    classes = _resolve_classes(data, classes)
    for name in _confidential_attributes(data, attribute):
        for counts in _class_value_counts(data, name, classes):
            r = np.sort(counts)[::-1]
            if len(r) < l:
                return False
            tail = r[l - 1 :].sum()
            if not r[0] < c * tail:
                return False
    return True
