"""Privacy-model verifiers and disclosure-risk estimation."""

from .audit import (
    PolicyAudit,
    PrivacyAudit,
    RequirementCheck,
    audit,
    audit_policy,
)
from .kanonymity import equivalence_classes, is_k_anonymous, k_anonymity_level
from .ldiversity import (
    distinct_l_diversity,
    entropy_l_diversity,
    is_recursive_cl_diverse,
)
from .ntcloseness import is_nt_close, nt_closeness_level
from .psensitive import is_p_sensitive_k_anonymous, p_sensitivity_level
from .risk import (
    expected_reidentification_rate,
    interval_disclosure_rate,
    record_linkage_risk,
    reidentification_upper_bound,
)
from .tcloseness import class_emds, is_t_close, t_closeness_level

__all__ = [
    "equivalence_classes",
    "k_anonymity_level",
    "is_k_anonymous",
    "distinct_l_diversity",
    "entropy_l_diversity",
    "is_recursive_cl_diverse",
    "t_closeness_level",
    "is_t_close",
    "class_emds",
    "nt_closeness_level",
    "is_nt_close",
    "p_sensitivity_level",
    "is_p_sensitive_k_anonymous",
    "expected_reidentification_rate",
    "record_linkage_risk",
    "interval_disclosure_rate",
    "reidentification_upper_bound",
    "audit",
    "PrivacyAudit",
    "audit_policy",
    "PolicyAudit",
    "RequirementCheck",
]
