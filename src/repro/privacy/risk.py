"""Disclosure-risk estimation for anonymized releases.

Two complementary attacker models:

* **Structural re-identification bound** — with k-anonymous equivalence
  classes, an intruder who knows a target's quasi-identifiers can do no
  better than picking uniformly within the matching class, so the expected
  re-identification probability is the mean of 1/|class| over records.
* **Distance-based record linkage** (Winkler et al. style) — an empirical
  attack: link every original record to its nearest released record(s) in
  quasi-identifier space, scoring a hit when the true record is among the
  nearest ties (weighted by 1/#ties).  This is the standard SDC measure of
  how much protection the masking actually bought.
"""

from __future__ import annotations

import numpy as np

from ..data.dataset import Microdata
from ..microagg.partition import Partition
from .kanonymity import equivalence_classes


def expected_reidentification_rate(classes: Partition) -> float:
    """Mean per-record re-identification probability under uniform guessing.

    For each record the probability is 1/|its class|, so the mean is
    ``n_classes / n_records`` — the structural ceiling k-anonymity buys.
    """
    sizes = classes.sizes()
    per_record = np.repeat(1.0 / sizes, sizes)
    return float(per_record.mean())


def record_linkage_risk(
    original: Microdata,
    released: Microdata,
    *,
    names: tuple[str, ...] | None = None,
    max_records: int = 2000,
    seed: int = 0,
) -> float:
    """Empirical linkage success rate of a nearest-neighbour attacker.

    Parameters
    ----------
    original:
        The attacker's background knowledge: true quasi-identifier values,
        row-aligned with ``released``.
    released:
        The anonymized table.
    names:
        Attributes the attacker links on; defaults to quasi-identifiers.
    max_records:
        Linkage is O(n^2); larger tables are attacked on a random sample of
        this many records (deterministic given ``seed``).
    seed:
        Sampling seed.

    Returns
    -------
    float
        Expected fraction of correct links in [0, 1]; ties at the minimum
        distance score fractionally.
    """
    if original.n_records != released.n_records:
        raise ValueError(
            f"original has {original.n_records} records, "
            f"released has {released.n_records}"
        )
    if names is None:
        names = original.quasi_identifiers
    if not names:
        raise ValueError("no attributes to link on")

    orig = original.matrix(names, scale="standardize")
    # Scale released with the original table's statistics so both live in
    # the same space (the attacker knows the original marginals).
    raw_orig = original.matrix(names)
    mean = raw_orig.mean(axis=0)
    std = raw_orig.std(axis=0)
    std[std == 0.0] = 1.0
    rel = (released.matrix(names) - mean) / std

    n = original.n_records
    if n > max_records:
        rng = np.random.default_rng(seed)
        targets = rng.choice(n, size=max_records, replace=False)
    else:
        targets = np.arange(n)

    hits = 0.0
    for i in targets:
        diff = rel - orig[i]
        d2 = np.einsum("ij,ij->i", diff, diff)
        best = d2.min()
        ties = np.flatnonzero(d2 <= best + 1e-12)
        if i in ties:
            hits += 1.0 / len(ties)
    return float(hits / len(targets))


def interval_disclosure_rate(
    original: Microdata,
    released: Microdata,
    *,
    names: tuple[str, ...] | None = None,
    width: float = 0.1,
) -> float:
    """Fraction of masked values falling within ±width·range of the truth.

    A standard attribute-disclosure proxy for numeric data (SDC literature:
    "interval disclosure"): high rates mean the released values still pin
    down the originals tightly.
    """
    if original.n_records != released.n_records:
        raise ValueError("datasets must be row-aligned")
    if not 0 < width:
        raise ValueError(f"width must be positive, got {width}")
    if names is None:
        names = tuple(
            n for n in original.quasi_identifiers if original.spec(n).is_numeric
        )
    if not names:
        raise ValueError("no numeric attributes to evaluate")
    inside = []
    for name in names:
        orig = original.values(name)
        rel = released.values(name)
        span = orig.max() - orig.min()
        if span == 0:
            inside.append(np.ones(len(orig), dtype=bool))
        else:
            inside.append(np.abs(rel - orig) <= width * span)
    return float(np.mean(np.column_stack(inside)))


def reidentification_upper_bound(data: Microdata) -> float:
    """1 / k where k is the achieved k-anonymity level of the release."""
    return 1.0 / equivalence_classes(data).min_size
