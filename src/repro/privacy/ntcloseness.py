"""(n, t)-closeness verification (Li, Li & Venkatasubramanian, TKDE 2010).

(n, t)-closeness relaxes t-closeness: an equivalence class E complies if
*some* "natural" superset E' of at least n records has EMD(E, E') <= t —
the intuition being that learning which large neighbourhood a subject
belongs to is acceptable, as long as the class reveals little beyond that
neighbourhood.  The paper notes its algorithms "are easily adaptable to
(n, t)-closeness"; this module provides the corresponding verifier.

Deciding over *all* natural supersets is intractable; following the
original authors' own evaluation strategy, the verifier checks the natural
candidates for microaggregated releases: for each class, the supersets
obtained by absorbing the nearest equivalence classes (in released
quasi-identifier space) one by one until at least n records are covered.
"""

from __future__ import annotations

import numpy as np

from ..core.confidential import ConfidentialModel
from ..data.dataset import Microdata
from ..microagg.partition import Partition
from .kanonymity import equivalence_classes


def nt_closeness_level(
    data: Microdata,
    n: int,
    *,
    classes: Partition | None = None,
    emd_mode: str = "distinct",
) -> float:
    """Smallest t such that the release satisfies (n, t)-closeness.

    For each class, grows a neighbourhood by repeatedly absorbing the
    nearest other class (by released QI centroid) until it holds >= n
    records, and takes the *minimum* EMD between the class and any
    intermediate neighbourhood of >= n records (any of them is a candidate
    natural superset).  The level is the maximum of those minima over
    classes.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if classes is None:
        classes = equivalence_classes(data)
    if n > data.n_records:
        raise ValueError(
            f"n={n} exceeds the number of records ({data.n_records})"
        )
    model = ConfidentialModel(data, emd_mode=emd_mode)
    qi = data.matrix(data.quasi_identifiers)
    members = list(classes.clusters())
    centroids = np.stack([qi[m].mean(axis=0) for m in members])

    worst = 0.0
    for g, base in enumerate(members):
        diffs = centroids - centroids[g]
        order = np.argsort(np.einsum("ij,ij->i", diffs, diffs), kind="stable")
        neighbourhood = base
        best = np.inf
        for other in order:
            if other != g:
                neighbourhood = np.concatenate([neighbourhood, members[other]])
            if len(neighbourhood) >= n:
                best = min(best, _emd_between(model, base, neighbourhood))
                # Growing further can only help, but the minimum over all
                # valid supersets is what defines the level; keep scanning
                # until the neighbourhood covers everything.
        if not np.isfinite(best):  # pragma: no cover - n <= n_records above
            best = _emd_between(model, base, np.arange(data.n_records))
        worst = max(worst, float(best))
    return worst


def is_nt_close(
    data: Microdata,
    n: int,
    t: float,
    *,
    classes: Partition | None = None,
    emd_mode: str = "distinct",
) -> bool:
    """Whether every class has a >= n-record natural superset within EMD t."""
    if t < 0:
        raise ValueError(f"t must be >= 0, got {t}")
    return nt_closeness_level(data, n, classes=classes, emd_mode=emd_mode) <= t + 1e-12


def _emd_between(
    model: ConfidentialModel, part: np.ndarray, whole: np.ndarray
) -> float:
    """EMD between a class and one of its supersets (max over attributes).

    (n, t)-closeness compares a class against a *superset*, not the full
    table, so the comparison universe is the superset's own values: ordered
    attributes get a local bin frame built on ``values[whole]`` (in the
    model's EMD flavour), nominal attributes keep their fixed category set
    (absent categories carry zero mass on both sides).
    """
    from ..distance.emd import NominalEMDReference, OrderedEMDReference

    worst = 0.0
    for ref, values, spec in zip(model._refs, model._values, model._specs):
        if isinstance(ref, NominalEMDReference):
            local = NominalEMDReference(values[whole], spec.n_categories)
            value = local.emd(values[part])
        else:
            local = OrderedEMDReference(values[whole], mode=model.emd_mode)
            value = local.emd(values[part])
        worst = max(worst, value)
    return worst
