"""k-Anonymity verification on released microdata.

These checkers operate on the *released* table: an equivalence class is a
maximal set of records sharing identical quasi-identifier values (after
masking, all records of a microaggregation cluster share the centroid, so
classes coincide with clusters).  Verification is deliberately independent
of the anonymization code paths — it recomputes classes from the released
values alone, which is what an auditor (or an attacker) can see.
"""

from __future__ import annotations

import numpy as np

from ..data.dataset import Microdata
from ..microagg.partition import Partition


def equivalence_classes(data: Microdata, names: tuple[str, ...] | None = None) -> Partition:
    """Group records by exact equality of their quasi-identifier tuples.

    Parameters
    ----------
    data:
        Released microdata.
    names:
        Attributes defining the classes; defaults to the declared
        quasi-identifiers.

    Returns
    -------
    Partition
        One cluster per distinct quasi-identifier combination.
    """
    if names is None:
        names = data.quasi_identifiers
    if not names:
        raise ValueError("no quasi-identifier attributes to group by")
    matrix = data.matrix(names)
    _, labels = np.unique(matrix, axis=0, return_inverse=True)
    return Partition(labels.ravel())


def k_anonymity_level(data: Microdata, names: tuple[str, ...] | None = None) -> int:
    """The k actually achieved: the size of the smallest equivalence class."""
    return equivalence_classes(data, names).min_size


def is_k_anonymous(data: Microdata, k: int, names: tuple[str, ...] | None = None) -> bool:
    """Whether every quasi-identifier combination occurs at least k times."""
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    return k_anonymity_level(data, names) >= k
