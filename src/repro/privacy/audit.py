"""One-call privacy audit of an anonymized release.

Bundles every verifier in this package into a single report — the thing to
attach to a data-release decision.  All quantities are recomputed from the
released table (plus, optionally, the original for the empirical attack),
never trusted from the anonymization run.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.policy import (
    DistinctLDiversity,
    KAnonymity,
    PrivacyPolicy,
    PSensitivity,
    Requirement,
    TCloseness,
    as_policy,
)
from ..data.dataset import Microdata
from ..microagg.partition import Partition
from .kanonymity import equivalence_classes
from .ldiversity import distinct_l_diversity, entropy_l_diversity
from .psensitive import p_sensitivity_level
from .risk import (
    expected_reidentification_rate,
    record_linkage_risk,
)
from .tcloseness import t_closeness_level


@dataclass(frozen=True)
class PrivacyAudit:
    """Privacy posture of one released table.

    Attributes
    ----------
    n_records, n_classes:
        Release size and number of equivalence classes.
    k_level:
        Achieved k-anonymity (smallest class).
    t_level:
        Achieved t-closeness (largest class EMD; smaller is stricter).
    distinct_l:
        Achieved distinct l-diversity.
    entropy_l:
        Achieved entropy l-diversity (exp of the minimum class entropy).
    expected_reid_rate:
        Structural re-identification ceiling (mean 1/|class|).
    linkage_risk:
        Empirical nearest-neighbour linkage success (None when the original
        table was not supplied).
    """

    n_records: int
    n_classes: int
    k_level: int
    t_level: float
    distinct_l: int
    entropy_l: float
    expected_reid_rate: float
    linkage_risk: float | None

    def format(self) -> str:
        """Multi-line human-readable report."""
        lines = [
            "Privacy audit",
            "-------------",
            f"records              : {self.n_records}",
            f"equivalence classes  : {self.n_classes}",
            f"k-anonymity level    : {self.k_level}",
            f"t-closeness level    : {self.t_level:.4f}",
            f"distinct l-diversity : {self.distinct_l}",
            f"entropy l-diversity  : {self.entropy_l:.2f}",
            f"E[re-identification] : {self.expected_reid_rate:.4f}",
        ]
        if self.linkage_risk is not None:
            lines.append(f"record-linkage risk  : {self.linkage_risk:.4f}")
        return "\n".join(lines)


def audit(
    released: Microdata,
    original: Microdata | None = None,
    *,
    classes: Partition | None = None,
    emd_mode: str = "distinct",
) -> PrivacyAudit:
    """Compute the full privacy report for a released table.

    Parameters
    ----------
    released:
        The anonymized microdata (roles assigned).
    original:
        Optional row-aligned original table; enables the empirical
        record-linkage attack measurement.
    classes:
        Pre-computed equivalence classes (recomputed from the released
        quasi-identifier values when omitted).
    emd_mode:
        EMD flavour for the t-closeness level.
    """
    if classes is None:
        classes = equivalence_classes(released)
    return PrivacyAudit(
        n_records=released.n_records,
        n_classes=classes.n_clusters,
        k_level=classes.min_size,
        t_level=t_closeness_level(released, classes=classes, emd_mode=emd_mode),
        distinct_l=distinct_l_diversity(released, classes=classes),
        entropy_l=entropy_l_diversity(released, classes=classes),
        expected_reid_rate=expected_reidentification_rate(classes),
        linkage_risk=(
            record_linkage_risk(original, released)
            if original is not None
            else None
        ),
    )


@dataclass(frozen=True)
class RequirementCheck:
    """Verdict of one policy requirement against one release.

    Attributes
    ----------
    requirement:
        The requirement's canonical spec token, e.g. ``"t=0.15"``.
    label:
        Human-readable privacy-model name, e.g. ``"t-closeness"``.
    achieved:
        The level measured on the released table.
    satisfied:
        Whether the measured level meets the requirement (threshold
        comparisons use the library-wide tolerance, see
        :mod:`repro.constants`).
    """

    requirement: str
    label: str
    achieved: float
    satisfied: bool


@dataclass(frozen=True)
class PolicyAudit:
    """A release audited against a declared :class:`~repro.core.policy.PrivacyPolicy`.

    Attributes
    ----------
    policy:
        Canonical spec string of the audited policy.
    checks:
        One :class:`RequirementCheck` per declared requirement, in the
        policy's canonical order.
    report:
        The full model-agnostic :class:`PrivacyAudit` contextualizing the
        pass/fail verdicts (None when the audit was run with
        ``posture=False``).
    """

    policy: str
    checks: tuple[RequirementCheck, ...]
    report: PrivacyAudit | None

    @property
    def satisfied(self) -> bool:
        """Whether the release meets every declared requirement."""
        return all(check.satisfied for check in self.checks)

    def format(self) -> str:
        """Multi-line human-readable report (requirements, then posture)."""
        lines = [
            f"Policy audit ({self.policy})",
            "-" * max(14, len(self.policy) + 15),
        ]
        for check in self.checks:
            verdict = "PASS" if check.satisfied else "FAIL"
            lines.append(
                f"{verdict}  {check.requirement:<10} "
                f"{check.label} (achieved {check.achieved:g})"
            )
        lines.append(
            f"=> policy {'satisfied' if self.satisfied else 'VIOLATED'}"
        )
        if self.report is not None:
            lines.append("")
            lines.append(self.report.format())
        return "\n".join(lines)


def _measure(
    req: Requirement,
    released: Microdata,
    classes: Partition,
    emd_mode: str,
) -> float:
    """The released table's achieved level for one requirement."""
    if isinstance(req, KAnonymity):
        return float(classes.min_size)
    if isinstance(req, TCloseness):
        return t_closeness_level(released, classes=classes, emd_mode=emd_mode)
    if isinstance(req, DistinctLDiversity):
        return float(distinct_l_diversity(released, classes=classes))
    if isinstance(req, PSensitivity):
        return float(p_sensitivity_level(released, classes=classes))
    raise TypeError(
        f"no verifier for requirement type {type(req).__name__}; "
        "audit_policy understands the requirements in repro.core.policy"
    )


def audit_policy(
    released: Microdata,
    policy: PrivacyPolicy | Requirement | str,
    original: Microdata | None = None,
    *,
    classes: Partition | None = None,
    emd_mode: str = "distinct",
    posture: bool = True,
) -> PolicyAudit:
    """Audit a released table against a declared privacy policy.

    Every requirement is *recomputed from the released table alone* with
    the verifiers in this package (equivalence classes from the released
    quasi-identifier values, dense Definition-2 EMDs, distinct-value
    counts) — nothing is trusted from the anonymization run.  This is the
    check to gate a data release on.

    Parameters
    ----------
    released:
        The anonymized microdata (roles assigned).
    policy:
        A :class:`~repro.core.policy.PrivacyPolicy`, a single requirement,
        or a spec string such as ``"k=5,t=0.15,l=3"``.
    original:
        Optional row-aligned original table; enables the empirical
        record-linkage measurement in the bundled posture report.
    classes:
        Pre-computed equivalence classes (recomputed when omitted).
    emd_mode:
        EMD flavour for the t-closeness measurement.
    posture:
        Also compute the bundled model-agnostic :func:`audit` report
        (entropy l-diversity, re-identification rates, linkage attack).
        Pass False when only the per-requirement verdicts matter — e.g.
        for an exit code — and skip that extra cost.
    """
    policy = as_policy(policy)
    if classes is None:
        classes = equivalence_classes(released)
    checks = tuple(
        RequirementCheck(
            requirement=req.spec(),
            label=req.label,
            achieved=(level := _measure(req, released, classes, emd_mode)),
            satisfied=req.satisfied_by(level),
        )
        for req in policy
    )
    return PolicyAudit(
        policy=policy.spec(),
        checks=checks,
        report=(
            audit(released, original, classes=classes, emd_mode=emd_mode)
            if posture
            else None
        ),
    )
