"""One-call privacy audit of an anonymized release.

Bundles every verifier in this package into a single report — the thing to
attach to a data-release decision.  All quantities are recomputed from the
released table (plus, optionally, the original for the empirical attack),
never trusted from the anonymization run.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..data.dataset import Microdata
from ..microagg.partition import Partition
from .kanonymity import equivalence_classes
from .ldiversity import distinct_l_diversity, entropy_l_diversity
from .risk import (
    expected_reidentification_rate,
    record_linkage_risk,
)
from .tcloseness import t_closeness_level


@dataclass(frozen=True)
class PrivacyAudit:
    """Privacy posture of one released table.

    Attributes
    ----------
    n_records, n_classes:
        Release size and number of equivalence classes.
    k_level:
        Achieved k-anonymity (smallest class).
    t_level:
        Achieved t-closeness (largest class EMD; smaller is stricter).
    distinct_l:
        Achieved distinct l-diversity.
    entropy_l:
        Achieved entropy l-diversity (exp of the minimum class entropy).
    expected_reid_rate:
        Structural re-identification ceiling (mean 1/|class|).
    linkage_risk:
        Empirical nearest-neighbour linkage success (None when the original
        table was not supplied).
    """

    n_records: int
    n_classes: int
    k_level: int
    t_level: float
    distinct_l: int
    entropy_l: float
    expected_reid_rate: float
    linkage_risk: float | None

    def format(self) -> str:
        """Multi-line human-readable report."""
        lines = [
            "Privacy audit",
            "-------------",
            f"records              : {self.n_records}",
            f"equivalence classes  : {self.n_classes}",
            f"k-anonymity level    : {self.k_level}",
            f"t-closeness level    : {self.t_level:.4f}",
            f"distinct l-diversity : {self.distinct_l}",
            f"entropy l-diversity  : {self.entropy_l:.2f}",
            f"E[re-identification] : {self.expected_reid_rate:.4f}",
        ]
        if self.linkage_risk is not None:
            lines.append(f"record-linkage risk  : {self.linkage_risk:.4f}")
        return "\n".join(lines)


def audit(
    released: Microdata,
    original: Microdata | None = None,
    *,
    classes: Partition | None = None,
    emd_mode: str = "distinct",
) -> PrivacyAudit:
    """Compute the full privacy report for a released table.

    Parameters
    ----------
    released:
        The anonymized microdata (roles assigned).
    original:
        Optional row-aligned original table; enables the empirical
        record-linkage attack measurement.
    classes:
        Pre-computed equivalence classes (recomputed from the released
        quasi-identifier values when omitted).
    emd_mode:
        EMD flavour for the t-closeness level.
    """
    if classes is None:
        classes = equivalence_classes(released)
    return PrivacyAudit(
        n_records=released.n_records,
        n_classes=classes.n_clusters,
        k_level=classes.min_size,
        t_level=t_closeness_level(released, classes=classes, emd_mode=emd_mode),
        distinct_l=distinct_l_diversity(released, classes=classes),
        entropy_l=entropy_l_diversity(released, classes=classes),
        expected_reid_rate=expected_reidentification_rate(classes),
        linkage_risk=(
            record_linkage_risk(original, released)
            if original is not None
            else None
        ),
    )
