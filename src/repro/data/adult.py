"""Adult-census-shaped surrogate with categorical attributes.

The paper's evaluation is purely numerical, but its conclusions section
commits to categorical support (ordinal/nominal EMD, categorical centroids)
and its related-work baselines (Incognito, Mondrian, SABRE) are normally
demonstrated on the UCI *Adult* data set.  This module generates an
Adult-shaped surrogate — mixed numeric / ordinal / nominal schema with
realistic marginals and an education-income dependence — used by the
categorical examples, the generalization baselines and their tests.

(The real Adult file is public, but this environment is offline; the
surrogate exercises exactly the same code paths.)
"""

from __future__ import annotations

import numpy as np

from .attributes import AttributeRole, nominal, numeric, ordinal
from .dataset import Microdata
from .synthetic import discretize

#: Default number of records (the UCI training split has 32,561; examples
#: default to a lighter sample).
ADULT_N = 5_000

#: Default generator seed.
ADULT_SEED = 19940501

EDUCATION_LEVELS = (
    "Preschool",
    "1st-4th",
    "5th-6th",
    "7th-8th",
    "9th",
    "10th",
    "11th",
    "12th",
    "HS-grad",
    "Some-college",
    "Assoc-voc",
    "Assoc-acdm",
    "Bachelors",
    "Masters",
    "Prof-school",
    "Doctorate",
)

WORKCLASSES = (
    "Private",
    "Self-emp-not-inc",
    "Self-emp-inc",
    "Federal-gov",
    "Local-gov",
    "State-gov",
    "Without-pay",
)

_WORKCLASS_P = (0.70, 0.08, 0.04, 0.03, 0.07, 0.05, 0.03)

MARITAL_STATUSES = (
    "Married-civ-spouse",
    "Divorced",
    "Never-married",
    "Separated",
    "Widowed",
    "Married-spouse-absent",
)

_MARITAL_P = (0.46, 0.14, 0.32, 0.03, 0.03, 0.02)

OCCUPATIONS = (
    "Tech-support",
    "Craft-repair",
    "Other-service",
    "Sales",
    "Exec-managerial",
    "Prof-specialty",
    "Handlers-cleaners",
    "Machine-op-inspct",
    "Adm-clerical",
    "Farming-fishing",
    "Transport-moving",
    "Priv-house-serv",
    "Protective-serv",
    "Armed-Forces",
)

RACES = ("White", "Black", "Asian-Pac-Islander", "Amer-Indian-Eskimo", "Other")

_RACE_P = (0.854, 0.096, 0.031, 0.010, 0.009)

SEXES = ("Female", "Male")

INCOME_CLASSES = ("<=50K", ">50K")


def load_adult(n: int = ADULT_N, seed: int = ADULT_SEED) -> Microdata:
    """Generate the Adult surrogate.

    Schema (roles follow the standard Adult anonymization setup):

    * quasi-identifiers: ``age`` (numeric), ``education`` (ordinal),
      ``hours_per_week`` (numeric), ``race`` (nominal), ``sex`` (nominal);
    * confidential: ``occupation`` (nominal) and ``income_class`` (ordinal
      with 2 levels, so ordered-EMD applies);
    * other: ``workclass``, ``marital_status``, ``capital_gain``.
    """
    if n < 10:
        raise ValueError(f"need at least 10 records, got {n}")
    rng = np.random.default_rng(seed)

    age = discretize(38.0 + 13.0 * rng.standard_normal(n), step=1.0, lo=17.0, hi=90.0)

    # Education skews toward HS-grad / Some-college, with a long upper tail.
    edu_latent = np.clip(8.7 + 2.6 * rng.standard_normal(n), 0, len(EDUCATION_LEVELS) - 1)
    education = np.round(edu_latent).astype(np.int64)

    hours = discretize(
        40.0 + 9.0 * rng.standard_normal(n) + 0.8 * (education - 8),
        step=1.0,
        lo=1.0,
        hi=99.0,
    )

    # Capital gain: mostly zero with a thin log-normal tail (Adult's shape).
    has_gain = rng.random(n) < 0.085
    capital_gain = np.where(
        has_gain, np.exp(8.0 + 1.0 * rng.standard_normal(n)), 0.0
    ).round(0)

    workclass = rng.choice(len(WORKCLASSES), size=n, p=_WORKCLASS_P)
    marital = rng.choice(len(MARITAL_STATUSES), size=n, p=_MARITAL_P)
    race = rng.choice(len(RACES), size=n, p=_RACE_P)
    sex = (rng.random(n) < 0.67).astype(np.int64)  # Male ≈ 2/3 of Adult

    # Occupation depends on education band (white-collar jobs need degrees).
    occupation = np.empty(n, dtype=np.int64)
    white_collar = np.array([0, 3, 4, 5, 8])  # tech, sales, exec, prof, clerical
    blue_collar = np.array([1, 2, 6, 7, 9, 10, 11, 12, 13])
    degree = education >= 12
    occupation[degree] = rng.choice(white_collar, size=int(degree.sum()))
    occupation[~degree] = np.where(
        rng.random(int((~degree).sum())) < 0.25,
        rng.choice(white_collar, size=int((~degree).sum())),
        rng.choice(blue_collar, size=int((~degree).sum())),
    )

    # Income class driven by education, hours and age (logistic model).
    logit = (
        -3.2
        + 0.33 * (education - 8)
        + 0.035 * (hours - 40)
        + 0.018 * (age - 38)
        + 0.9 * (marital == 0)
    )
    income = (rng.random(n) < 1.0 / (1.0 + np.exp(-logit))).astype(np.int64)

    columns = {
        "age": age,
        "education": education,
        "hours_per_week": hours,
        "capital_gain": capital_gain,
        "workclass": workclass,
        "marital_status": marital,
        "occupation": occupation,
        "race": race,
        "sex": sex,
        "income_class": income,
    }
    schema = [
        numeric("age", role=AttributeRole.QUASI_IDENTIFIER),
        ordinal("education", EDUCATION_LEVELS, role=AttributeRole.QUASI_IDENTIFIER),
        numeric("hours_per_week", role=AttributeRole.QUASI_IDENTIFIER),
        numeric("capital_gain"),
        nominal("workclass", WORKCLASSES),
        nominal("marital_status", MARITAL_STATUSES),
        nominal("occupation", OCCUPATIONS, role=AttributeRole.CONFIDENTIAL),
        nominal("race", RACES, role=AttributeRole.QUASI_IDENTIFIER),
        nominal("sex", SEXES, role=AttributeRole.QUASI_IDENTIFIER),
        ordinal("income_class", INCOME_CLASSES, role=AttributeRole.CONFIDENTIAL),
    ]
    return Microdata(columns, schema)
