"""Numpy-backed microdata container.

:class:`Microdata` is the tabular substrate every algorithm in this library
operates on.  It stores one numpy array per column plus an
:class:`~repro.data.attributes.AttributeSpec` per column, and offers the
row/column selection, role bookkeeping and matrix-extraction operations that
the anonymization algorithms need.

Numeric columns are stored as ``float64``; categorical columns are stored as
``int64`` codes into the spec's ``categories`` tuple.  The container is
value-immutable by convention: every transforming method returns a new
:class:`Microdata` and the underlying arrays are never mutated in place.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np

from .attributes import AttributeRole, AttributeSpec


class SchemaError(ValueError):
    """Raised when columns and schema disagree or a column lookup fails."""


class Microdata:
    """An immutable-by-convention microdata table.

    Parameters
    ----------
    columns:
        Mapping from attribute name to a 1-D array-like of values.  Numeric
        columns are coerced to ``float64``; categorical columns to ``int64``
        codes (labels are accepted and encoded via the spec).
    schema:
        One :class:`AttributeSpec` per column, in presentation order.
    validate:
        When true (default), verify schema/column consistency, equal column
        lengths and categorical code ranges.
    """

    __slots__ = ("_columns", "_schema", "_index")

    def __init__(
        self,
        columns: Mapping[str, np.ndarray],
        schema: Sequence[AttributeSpec],
        *,
        validate: bool = True,
    ) -> None:
        self._schema: tuple[AttributeSpec, ...] = tuple(schema)
        self._index: dict[str, AttributeSpec] = {s.name: s for s in self._schema}
        if validate and len(self._index) != len(self._schema):
            names = [s.name for s in self._schema]
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise SchemaError(f"duplicate attribute names in schema: {dupes}")

        coerced: dict[str, np.ndarray] = {}
        for spec in self._schema:
            if spec.name not in columns:
                raise SchemaError(f"schema attribute {spec.name!r} missing from columns")
            coerced[spec.name] = _coerce_column(columns[spec.name], spec)
        if validate:
            extra = set(columns) - set(coerced)
            if extra:
                raise SchemaError(f"columns without schema entry: {sorted(extra)}")
            lengths = {name: len(col) for name, col in coerced.items()}
            if len(set(lengths.values())) > 1:
                raise SchemaError(f"columns have unequal lengths: {lengths}")
            for spec in self._schema:
                if spec.is_categorical:
                    codes = coerced[spec.name]
                    if codes.size and (
                        codes.min() < 0 or codes.max() >= spec.n_categories
                    ):
                        raise SchemaError(
                            f"column {spec.name!r} has codes outside "
                            f"[0, {spec.n_categories})"
                        )
        self._columns = coerced

    # -- construction helpers ---------------------------------------------------

    @classmethod
    def from_arrays(
        cls,
        arrays: Sequence[np.ndarray],
        schema: Sequence[AttributeSpec],
    ) -> "Microdata":
        """Build from a sequence of column arrays parallel to ``schema``."""
        if len(arrays) != len(schema):
            raise SchemaError(
                f"{len(arrays)} arrays provided for {len(schema)} schema entries"
            )
        return cls({s.name: a for s, a in zip(schema, arrays)}, schema)

    # -- basic shape ------------------------------------------------------------

    @property
    def n_records(self) -> int:
        """Number of rows."""
        if not self._schema:
            return 0
        return len(self._columns[self._schema[0].name])

    def __len__(self) -> int:
        return self.n_records

    @property
    def n_attributes(self) -> int:
        return len(self._schema)

    @property
    def schema(self) -> tuple[AttributeSpec, ...]:
        return self._schema

    @property
    def attribute_names(self) -> tuple[str, ...]:
        return tuple(s.name for s in self._schema)

    def spec(self, name: str) -> AttributeSpec:
        """Return the spec of attribute ``name``."""
        try:
            return self._index[name]
        except KeyError:
            raise SchemaError(f"no attribute named {name!r}") from None

    def __contains__(self, name: object) -> bool:
        return name in self._index

    # -- role accessors ----------------------------------------------------------

    def _names_with_role(self, role: AttributeRole) -> tuple[str, ...]:
        return tuple(s.name for s in self._schema if s.role is role)

    @property
    def identifiers(self) -> tuple[str, ...]:
        return self._names_with_role(AttributeRole.IDENTIFIER)

    @property
    def quasi_identifiers(self) -> tuple[str, ...]:
        return self._names_with_role(AttributeRole.QUASI_IDENTIFIER)

    @property
    def confidential(self) -> tuple[str, ...]:
        return self._names_with_role(AttributeRole.CONFIDENTIAL)

    @property
    def non_confidential(self) -> tuple[str, ...]:
        return self._names_with_role(AttributeRole.OTHER)

    # -- value access -------------------------------------------------------------

    def values(self, name: str) -> np.ndarray:
        """Raw column values: floats for numeric, int codes for categorical.

        The returned array is a read-only view; copy before mutating.
        """
        self.spec(name)  # raises SchemaError on unknown name
        view = self._columns[name].view()
        view.flags.writeable = False
        return view

    def labels(self, name: str) -> np.ndarray:
        """Column values decoded to labels (categorical) or floats (numeric)."""
        spec = self.spec(name)
        col = self._columns[name]
        if spec.is_numeric:
            return col.copy()
        cats = np.asarray(spec.categories, dtype=object)
        return cats[col]

    def matrix(
        self,
        names: Sequence[str] | None = None,
        *,
        scale: str = "none",
    ) -> np.ndarray:
        """Extract columns as a dense ``float64`` matrix of shape (n, len(names)).

        Categorical columns contribute their integer codes (which for ordinal
        attributes is their rank).

        Parameters
        ----------
        names:
            Columns to extract; defaults to all attributes in schema order.
        scale:
            ``"none"`` (raw values), ``"standardize"`` (zero mean / unit
            variance per column; constant columns stay zero), or ``"range"``
            (min-max to [0, 1]; constant columns stay zero).
        """
        if names is None:
            names = self.attribute_names
        cols = [self._columns[self.spec(n).name].astype(np.float64) for n in names]
        if not cols:
            return np.empty((self.n_records, 0), dtype=np.float64)
        mat = np.column_stack(cols)
        if scale == "none":
            return mat
        if scale == "standardize":
            mean = mat.mean(axis=0)
            std = mat.std(axis=0)
            std[std == 0.0] = 1.0
            return (mat - mean) / std
        if scale == "range":
            lo = mat.min(axis=0)
            span = mat.max(axis=0) - lo
            span[span == 0.0] = 1.0
            return (mat - lo) / span
        raise ValueError(f"unknown scale mode {scale!r}")

    def qi_matrix(self, *, scale: str = "standardize") -> np.ndarray:
        """Quasi-identifier matrix (the geometry microaggregation clusters on).

        Standardization is the default because quasi-identifiers commonly mix
        scales (income vs. age) and microaggregation distances would otherwise
        be dominated by the widest column.
        """
        if not self.quasi_identifiers:
            raise SchemaError("dataset has no quasi-identifier attributes")
        return self.matrix(self.quasi_identifiers, scale=scale)

    # -- transformation -----------------------------------------------------------

    def subset(self, rows: Iterable[int] | np.ndarray) -> "Microdata":
        """Return a new Microdata containing the given row indices (in order)."""
        idx = np.asarray(list(rows) if not isinstance(rows, np.ndarray) else rows)
        if idx.dtype == bool:
            if idx.shape != (self.n_records,):
                raise IndexError(
                    f"boolean mask of length {idx.size} for {self.n_records} records"
                )
        columns = {name: col[idx] for name, col in self._columns.items()}
        return Microdata(columns, self._schema, validate=False)

    def with_columns(self, replacements: Mapping[str, np.ndarray]) -> "Microdata":
        """Return a copy with some columns replaced (schema unchanged)."""
        unknown = set(replacements) - set(self._index)
        if unknown:
            raise SchemaError(f"cannot replace unknown columns: {sorted(unknown)}")
        columns = dict(self._columns)
        for name, col in replacements.items():
            columns[name] = _coerce_column(col, self._index[name])
            if len(columns[name]) != self.n_records:
                raise SchemaError(
                    f"replacement column {name!r} has {len(columns[name])} rows, "
                    f"expected {self.n_records}"
                )
        return Microdata(columns, self._schema, validate=False)

    def with_roles(
        self,
        *,
        identifiers: Sequence[str] = (),
        quasi_identifiers: Sequence[str] = (),
        confidential: Sequence[str] = (),
    ) -> "Microdata":
        """Return a copy with disclosure roles reassigned.

        Attributes named in one of the three arguments get that role;
        attributes named in none of them are reset to ``OTHER``.
        """
        assignment: dict[str, AttributeRole] = {}
        for names, role in (
            (identifiers, AttributeRole.IDENTIFIER),
            (quasi_identifiers, AttributeRole.QUASI_IDENTIFIER),
            (confidential, AttributeRole.CONFIDENTIAL),
        ):
            for name in names:
                self.spec(name)  # validate existence
                if name in assignment:
                    raise SchemaError(f"attribute {name!r} assigned two roles")
                assignment[name] = role
        schema = tuple(
            s.with_role(assignment.get(s.name, AttributeRole.OTHER))
            for s in self._schema
        )
        return Microdata(self._columns, schema, validate=False)

    def drop(self, names: Sequence[str]) -> "Microdata":
        """Return a copy without the given columns."""
        for name in names:
            self.spec(name)
        keep = [s for s in self._schema if s.name not in set(names)]
        columns = {s.name: self._columns[s.name] for s in keep}
        return Microdata(columns, keep, validate=False)

    def drop_identifiers(self) -> "Microdata":
        """Return a copy without identifier columns (release hygiene)."""
        return self.drop(self.identifiers) if self.identifiers else self

    def copy(self) -> "Microdata":
        """Deep copy (new column arrays, same schema objects)."""
        columns = {name: col.copy() for name, col in self._columns.items()}
        return Microdata(columns, self._schema, validate=False)

    # -- comparison / repr ---------------------------------------------------------

    def equals(self, other: "Microdata", *, rtol: float = 0.0, atol: float = 0.0) -> bool:
        """Structural equality (schema and values), with optional tolerance."""
        if not isinstance(other, Microdata):
            return False
        if self._schema != other._schema:
            return False
        for name in self.attribute_names:
            a, b = self._columns[name], other._columns[name]
            if a.shape != b.shape:
                return False
            if rtol == 0.0 and atol == 0.0:
                if not np.array_equal(a, b):
                    return False
            elif not np.allclose(a, b, rtol=rtol, atol=atol):
                return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        roles = {
            "QI": len(self.quasi_identifiers),
            "conf": len(self.confidential),
            "id": len(self.identifiers),
        }
        role_str = ", ".join(f"{v} {k}" for k, v in roles.items() if v)
        return (
            f"Microdata({self.n_records} records x {self.n_attributes} attributes"
            + (f"; {role_str}" if role_str else "")
            + ")"
        )


def _coerce_column(values: object, spec: AttributeSpec) -> np.ndarray:
    """Coerce a raw column to the canonical dtype for its spec."""
    arr = np.asarray(values)
    if arr.ndim != 1:
        raise SchemaError(
            f"column {spec.name!r} must be 1-D, got shape {arr.shape}"
        )
    if spec.is_numeric:
        try:
            return np.ascontiguousarray(arr, dtype=np.float64)
        except (TypeError, ValueError) as exc:
            raise SchemaError(
                f"column {spec.name!r} is not numeric: {exc}"
            ) from exc
    # Categorical: accept either integer codes or labels.
    if arr.dtype.kind in "iu":
        return np.ascontiguousarray(arr, dtype=np.int64)
    if arr.dtype.kind == "f":
        codes = arr.astype(np.int64)
        if not np.array_equal(codes.astype(np.float64), arr):
            raise SchemaError(
                f"column {spec.name!r}: float values are not integral codes"
            )
        return np.ascontiguousarray(codes)
    lookup = {label: i for i, label in enumerate(spec.categories)}
    try:
        return np.fromiter(
            (lookup[str(v)] for v in arr), dtype=np.int64, count=len(arr)
        )
    except KeyError as exc:
        raise SchemaError(
            f"column {spec.name!r} contains a value {exc.args[0]!r} that is "
            f"not a declared category"
        ) from None
