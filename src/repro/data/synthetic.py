"""Building blocks for the synthetic evaluation datasets.

The paper evaluates on two data products this repository cannot ship:

* the CASC "Census" reference microdata (1,080 records) [Brand et al.], whose
  distribution site is long offline, and
* the California OSHPD Patient Discharge Data 2010 (Cedars-Sinai subset),
  which requires a data-use agreement.

What the paper's analysis actually attributes algorithmic behaviour to is a
small set of *structural* properties: the record count, the number of
quasi-identifier dimensions, right-skewed income-like marginals, and — above
all — the strength of the dependence between quasi-identifiers and the
confidential attribute (r ≈ 0.52 for MCD, ≈ 0.92 for HCD, ≈ 0.13 for Patient
Discharge).  The helpers in this module generate data with exactly those
properties, deterministically from a seed, so every experiment in
``benchmarks/`` is reproducible bit-for-bit.

The core construction: draw a latent Gaussian factor ``s`` shared by the
quasi-identifiers, then set the confidential latent to
``alpha * s + sqrt(1 - alpha^2) * eps`` with independent noise ``eps``.  In
the latent (jointly Gaussian) population the multiple correlation of the
confidential variable on the quasi-identifiers equals ``alpha``; monotone
marginal transforms (exp, affine) preserve it approximately, and the
generators are calibrated so the realized correlation matches the paper's
reported value within a small tolerance (asserted by tests).
"""

from __future__ import annotations

import numpy as np


def latent_factor_block(
    rng: np.random.Generator,
    n: int,
    n_vars: int,
    *,
    shared_weight: float = 0.7,
) -> tuple[np.ndarray, np.ndarray]:
    """Draw ``n_vars`` correlated standard-normal columns plus their factor.

    Each column is ``shared_weight * s + sqrt(1 - shared_weight^2) * e_i``
    for a common factor ``s``; pairwise correlation is ``shared_weight**2``.

    Returns
    -------
    (X, s):
        ``X`` of shape (n, n_vars) with standard-normal marginals, and the
        shared factor ``s`` of shape (n,).
    """
    if not 0.0 <= shared_weight <= 1.0:
        raise ValueError(f"shared_weight must be in [0, 1], got {shared_weight}")
    s = rng.standard_normal(n)
    noise = rng.standard_normal((n, n_vars))
    unique = float(np.sqrt(1.0 - shared_weight**2))
    X = shared_weight * s[:, None] + unique * noise
    return X, s


def dependent_latent(
    rng: np.random.Generator,
    driver: np.ndarray,
    alpha: float,
) -> np.ndarray:
    """Latent variable with population correlation ``alpha`` to ``driver``.

    ``driver`` is standardized internally, so any linear combination of the
    quasi-identifier latents can be passed directly.
    """
    if not 0.0 <= alpha <= 1.0:
        raise ValueError(f"alpha must be in [0, 1], got {alpha}")
    d = np.asarray(driver, dtype=np.float64)
    std = d.std()
    if std == 0.0:
        raise ValueError("driver has zero variance")
    z = (d - d.mean()) / std
    eps = rng.standard_normal(len(d))
    return alpha * z + float(np.sqrt(1.0 - alpha**2)) * eps


def to_lognormal_income(
    latent: np.ndarray,
    *,
    median: float,
    sigma: float = 0.6,
) -> np.ndarray:
    """Map a standard-normal latent to a right-skewed income-like scale.

    Produces ``median * exp(sigma * latent)``: log-normal with the requested
    median, the canonical shape for income/tax/charge attributes.
    """
    if median <= 0:
        raise ValueError(f"median must be positive, got {median}")
    return median * np.exp(sigma * np.asarray(latent, dtype=np.float64))


def to_affine_positive(
    latent: np.ndarray,
    *,
    center: float,
    spread: float,
) -> np.ndarray:
    """Affine map of a latent onto a positive scale, clipped at zero.

    Affine maps preserve Pearson correlations exactly; the clip only affects
    the far left tail (choose ``center >= 3 * spread`` to keep it negligible).
    """
    values = center + spread * np.asarray(latent, dtype=np.float64)
    return np.clip(values, 0.0, None)


def multiple_correlation(y: np.ndarray, X: np.ndarray) -> float:
    """Empirical multiple correlation coefficient R of ``y`` on columns of ``X``.

    R is the Pearson correlation between ``y`` and its least-squares
    prediction from ``X`` (with intercept); this is the quantity the paper
    reports as "the correlation between quasi-identifier and confidential
    attributes".
    """
    y = np.asarray(y, dtype=np.float64)
    X = np.asarray(X, dtype=np.float64)
    if X.ndim == 1:
        X = X[:, None]
    if len(y) != len(X):
        raise ValueError(f"length mismatch: y has {len(y)}, X has {len(X)} rows")
    design = np.column_stack([np.ones(len(y)), X])
    coef, *_ = np.linalg.lstsq(design, y, rcond=None)
    fitted = design @ coef
    if fitted.std() == 0.0 or y.std() == 0.0:
        return 0.0
    return float(np.corrcoef(y, fitted)[0, 1])


def discretize(values: np.ndarray, *, step: float = 1.0, lo: float | None = None,
               hi: float | None = None) -> np.ndarray:
    """Round values to a grid (and optionally clip), e.g. ages or day counts."""
    if step <= 0:
        raise ValueError(f"step must be positive, got {step}")
    out = np.round(np.asarray(values, dtype=np.float64) / step) * step
    if lo is not None or hi is not None:
        out = np.clip(out, lo, hi)
    return out
