"""Microdata model and evaluation data sets.

Public surface:

* :class:`~repro.data.dataset.Microdata` — the tabular container.
* :class:`~repro.data.attributes.AttributeSpec` plus the
  :func:`~repro.data.attributes.numeric` / :func:`~repro.data.attributes.ordinal`
  / :func:`~repro.data.attributes.nominal` spec constructors.
* CSV round-trip via :func:`~repro.data.io.read_csv` /
  :func:`~repro.data.io.write_csv`.
* The seeded surrogates for the paper's evaluation data:
  :func:`~repro.data.census.load_mcd`, :func:`~repro.data.census.load_hcd`,
  :func:`~repro.data.patient_discharge.load_patient_discharge`, and
  :func:`~repro.data.adult.load_adult`.
"""

from .attributes import (
    AttributeKind,
    AttributeRole,
    AttributeSpec,
    nominal,
    numeric,
    ordinal,
)
from .adult import ADULT_N, ADULT_SEED, load_adult
from .census import (
    CENSUS_N,
    CENSUS_SEED,
    HCD_CORRELATION,
    MCD_CORRELATION,
    load_census,
    load_hcd,
    load_mcd,
)
from .dataset import Microdata, SchemaError
from .io import read_csv, write_csv
from .patient_discharge import (
    PATIENT_DISCHARGE_N,
    PATIENT_DISCHARGE_SEED,
    PD_CORRELATION,
    load_patient_discharge,
)
from .synthetic import multiple_correlation
from .toy import load_salary_toy, load_uniform_toy

__all__ = [
    "AttributeKind",
    "AttributeRole",
    "AttributeSpec",
    "Microdata",
    "SchemaError",
    "numeric",
    "ordinal",
    "nominal",
    "read_csv",
    "write_csv",
    "load_census",
    "load_mcd",
    "load_hcd",
    "load_patient_discharge",
    "load_adult",
    "load_salary_toy",
    "load_uniform_toy",
    "multiple_correlation",
    "CENSUS_N",
    "CENSUS_SEED",
    "MCD_CORRELATION",
    "HCD_CORRELATION",
    "PATIENT_DISCHARGE_N",
    "PATIENT_DISCHARGE_SEED",
    "PD_CORRELATION",
    "ADULT_N",
    "ADULT_SEED",
]
