"""Tiny hand-checkable microdata examples.

These fixtures exist so that unit tests and documentation can assert exact
values computed by hand.  ``load_salary_toy`` mirrors the running example of
the original t-closeness paper (Li, Li & Venkatasubramanian, ICDE 2007):
nine patient records with zip code and age as quasi-identifiers and salary /
disease as confidential attributes, where the salary column takes the nine
equally-spaced values 3k..11k.
"""

from __future__ import annotations

import numpy as np

from .attributes import AttributeRole, nominal, numeric
from .dataset import Microdata

DISEASES = ("gastric-ulcer", "gastritis", "stomach-cancer", "bronchitis", "flu", "pneumonia")


def load_salary_toy() -> Microdata:
    """Nine records inspired by the ICDE'07 t-closeness running example.

    Salary takes the nine distinct values 3000, 4000, ..., 11000 so that the
    ordered EMD of any 3-record class can be computed by hand (e.g. the class
    {3000, 4000, 5000} has EMD = 0.375 to the full table, the class
    {3000, 5000, 11000} only 0.167).
    """
    zips = np.array([47677, 47602, 47678, 47905, 47909, 47906, 47605, 47673, 47607], float)
    ages = np.array([29, 22, 27, 43, 52, 47, 30, 36, 32], float)
    salary = np.array(
        [3000, 4000, 5000, 6000, 11000, 8000, 7000, 9000, 10000], float
    )
    disease = np.array(
        ["gastric-ulcer", "gastritis", "stomach-cancer",
         "gastritis", "flu", "bronchitis",
         "bronchitis", "pneumonia", "stomach-cancer"],
        dtype=object,
    )
    schema = [
        numeric("zip", role=AttributeRole.QUASI_IDENTIFIER),
        numeric("age", role=AttributeRole.QUASI_IDENTIFIER),
        numeric("salary", role=AttributeRole.CONFIDENTIAL),
        nominal("disease", DISEASES),
    ]
    return Microdata(
        {"zip": zips, "age": ages, "salary": salary, "disease": disease}, schema
    )


def load_uniform_toy(n: int = 12, *, n_qi: int = 2, seed: int = 7) -> Microdata:
    """Small random dataset with a confidential column of n distinct ranks.

    Handy for exercising the rank-based EMD propositions: the confidential
    attribute is a random permutation of 1..n, so every record occupies a
    distinct rank, matching the setting of Propositions 1 and 2.
    """
    if n < 2:
        raise ValueError(f"need at least 2 records, got {n}")
    rng = np.random.default_rng(seed)
    columns = {
        f"qi{i}": rng.normal(size=n) for i in range(n_qi)
    }
    columns["secret"] = rng.permutation(np.arange(1.0, n + 1.0))
    schema = [
        numeric(f"qi{i}", role=AttributeRole.QUASI_IDENTIFIER) for i in range(n_qi)
    ] + [numeric("secret", role=AttributeRole.CONFIDENTIAL)]
    return Microdata(columns, schema)
