"""CSV serialization for :class:`~repro.data.dataset.Microdata`.

Pandas is not part of this library's dependency set, so reading and writing
go through the standard-library :mod:`csv` module.  The on-disk format is a
plain header + rows CSV; schema information (kinds, roles, categories) is
either supplied by the caller or inferred with conservative heuristics.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Sequence

import numpy as np

from .attributes import AttributeKind, AttributeRole, AttributeSpec
from .dataset import Microdata, SchemaError


def write_csv(data: Microdata, path: str | Path) -> None:
    """Write ``data`` to ``path`` as CSV (categorical columns as labels)."""
    path = Path(path)
    decoded = [data.labels(name) for name in data.attribute_names]
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(data.attribute_names)
        for row in zip(*decoded):
            writer.writerow(
                [_format_cell(v, s) for v, s in zip(row, data.schema)]
            )


def _format_cell(value: object, spec: AttributeSpec) -> str:
    if spec.is_numeric:
        f = float(value)  # type: ignore[arg-type]
        if f.is_integer():
            return str(int(f))
        return repr(f)
    return str(value)


def read_csv(
    path: str | Path,
    schema: Sequence[AttributeSpec] | None = None,
    *,
    quasi_identifiers: Sequence[str] = (),
    confidential: Sequence[str] = (),
    identifiers: Sequence[str] = (),
) -> Microdata:
    """Read a CSV file into a :class:`Microdata`.

    Parameters
    ----------
    path:
        CSV file with a header row.
    schema:
        Optional explicit schema.  When omitted, each column is inferred as
        ``NUMERIC`` if every non-empty cell parses as a float, otherwise as
        ``NOMINAL`` with categories in order of first appearance.
    quasi_identifiers, confidential, identifiers:
        Role assignments applied after loading (only used when ``schema`` is
        omitted or the caller wants to override roles in one call).
    """
    path = Path(path)
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise SchemaError(f"{path} is empty (no header row)") from None
        rows = [row for row in reader if row]
    for i, row in enumerate(rows):
        if len(row) != len(header):
            raise SchemaError(
                f"{path}: row {i + 2} has {len(row)} cells, expected {len(header)}"
            )
    raw_columns = {
        name: [row[j] for row in rows] for j, name in enumerate(header)
    }
    if schema is None:
        schema = [_infer_spec(name, raw_columns[name]) for name in header]
    columns = {}
    for spec in schema:
        if spec.name not in raw_columns:
            raise SchemaError(f"{path}: schema attribute {spec.name!r} not in header")
        cells = raw_columns[spec.name]
        if spec.is_numeric:
            columns[spec.name] = np.array([float(c) for c in cells], dtype=np.float64)
        else:
            columns[spec.name] = np.asarray(cells, dtype=object)
    data = Microdata(columns, schema)
    if quasi_identifiers or confidential or identifiers:
        data = data.with_roles(
            identifiers=identifiers,
            quasi_identifiers=quasi_identifiers,
            confidential=confidential,
        )
    return data


def _infer_spec(name: str, cells: list[str]) -> AttributeSpec:
    """Infer NUMERIC vs NOMINAL from the cell contents."""
    is_numeric = True
    for cell in cells:
        if cell == "":
            continue
        try:
            float(cell)
        except ValueError:
            is_numeric = False
            break
    if is_numeric:
        return AttributeSpec(name=name, kind=AttributeKind.NUMERIC)
    seen: dict[str, None] = {}
    for cell in cells:
        seen.setdefault(cell, None)
    return AttributeSpec(
        name=name,
        kind=AttributeKind.NOMINAL,
        role=AttributeRole.OTHER,
        categories=tuple(seen),
    )
