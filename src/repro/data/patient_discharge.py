"""Surrogate for the California OSHPD Patient Discharge 2010 data set.

The paper's scalability and large-n utility experiments (Figures 5-6) use
the Patient Discharge Data 2010 of Californian hospitals (Cedars-Sinai
Medical Center subset): after removing records with missing values, 23,435
records remain, each with 7 quasi-identifier attributes (patient age, zip
code, admission date, ...) and one confidential attribute, the amount
charged for the hospital stay.  The reported multiple correlation between
the quasi-identifiers and the charge is only 0.129.

The real extract is distributed under a data-use agreement, so this module
generates a seeded surrogate with the same record count, the same
quasi-identifier dimensionality (7), realistic mixed-scale marginals
(discrete ages, day-of-year codes, skewed charges) and the same weak
QI-confidential dependence.  See DESIGN.md §3.
"""

from __future__ import annotations

import numpy as np

from .attributes import AttributeRole, numeric
from .dataset import Microdata
from .synthetic import (
    dependent_latent,
    discretize,
    latent_factor_block,
    to_lognormal_income,
)

#: Record count of the Cedars-Sinai subset after removing missing values.
PATIENT_DISCHARGE_N = 23_435

#: Default generator seed.
PATIENT_DISCHARGE_SEED = 20100523

#: Paper-reported multiple correlation between the 7 QIs and the charge.
PD_CORRELATION = 0.129

#: Attenuation of Pearson correlation caused by the log-normal transform of
#: the charge (corr(exp(sigma * X), X) for sigma = 0.7); the latent target is
#: scaled up by 1/attenuation so the released column hits ``PD_CORRELATION``.
_LOGNORMAL_ATTENUATION = 0.88

QI_NAMES = (
    "AGE",
    "ZIP_REGION",
    "ADMISSION_DOY",
    "LENGTH_OF_STAY",
    "SEVERITY",
    "N_PROCEDURES",
    "PAYER",
)

CONFIDENTIAL_NAME = "CHARGE"


def load_patient_discharge(
    n: int = PATIENT_DISCHARGE_N,
    seed: int = PATIENT_DISCHARGE_SEED,
) -> Microdata:
    """Generate the Patient Discharge surrogate.

    Returns a :class:`Microdata` with the seven quasi-identifiers named in
    :data:`QI_NAMES` (discrete numeric codes and counts, as in the original
    extract) and the confidential ``CHARGE`` column (continuous, tie-free).

    Parameters
    ----------
    n:
        Number of records.  The paper's extract has 23,435; the benchmark
        harness defaults to a subsample because Algorithm 2 is O(n^3/k)
        (see EXPERIMENTS.md).
    seed:
        RNG seed; the default pins the data used throughout this repo.
    """
    if n < 8:
        raise ValueError(f"need at least 8 records, got {n}")
    rng = np.random.default_rng(seed)

    # Seven weakly coupled latents: hospital QI attributes are nearly
    # independent of each other (age tells you little about payer code).
    latents, _ = latent_factor_block(rng, n, 7, shared_weight=0.25)

    age = discretize(46.0 + 19.0 * latents[:, 0], step=1.0, lo=0.0, hi=100.0)
    zip_region = discretize(
        45.0 + 18.0 * latents[:, 1], step=1.0, lo=0.0, hi=89.0
    )
    admission_doy = discretize(
        183.0 + 80.0 * latents[:, 2], step=1.0, lo=1.0, hi=365.0
    )
    length_of_stay = np.maximum(
        1.0, np.round(np.exp(1.1 + 0.7 * latents[:, 3]))
    )
    severity = discretize(3.0 + 1.1 * latents[:, 4], step=1.0, lo=1.0, hi=5.0)
    n_procedures = np.maximum(
        0.0, np.round(2.0 + 1.6 * latents[:, 5] + rng.standard_normal(n) * 0.5)
    )
    payer = discretize(4.0 + 1.8 * latents[:, 6], step=1.0, lo=0.0, hi=8.0)

    # The charge depends weakly on the clinical QIs (mostly stay length and
    # severity), calibrated so the multiple correlation of the released
    # charge on the 7 released QIs lands on the paper's 0.129.
    qi_matrix = np.column_stack(
        [age, zip_region, admission_doy, length_of_stay, severity, n_procedures, payer]
    )
    qi_std = (qi_matrix - qi_matrix.mean(axis=0)) / qi_matrix.std(axis=0)
    driver = (
        0.6 * qi_std[:, 3]  # length of stay
        + 0.3 * qi_std[:, 4]  # severity
        + 0.1 * qi_std[:, 5]  # procedures
    )
    alpha = min(1.0, PD_CORRELATION / _LOGNORMAL_ATTENUATION)
    charge_latent = dependent_latent(rng, driver, alpha)
    charge = to_lognormal_income(charge_latent, median=16_000.0, sigma=0.7)

    columns = {
        "AGE": age,
        "ZIP_REGION": zip_region,
        "ADMISSION_DOY": admission_doy,
        "LENGTH_OF_STAY": length_of_stay,
        "SEVERITY": severity,
        "N_PROCEDURES": n_procedures,
        "PAYER": payer,
        "CHARGE": charge,
    }
    schema = [
        numeric(name, role=AttributeRole.QUASI_IDENTIFIER) for name in QI_NAMES
    ] + [numeric(CONFIDENTIAL_NAME, role=AttributeRole.CONFIDENTIAL)]
    return Microdata(columns, schema)
