"""Surrogate for the CASC "Census" evaluation data set.

The paper's first evaluation battery (Tables 1-3, Figures 6-7) uses the
"Census" reference data set from the European CASC project [Brand et al.]:
1,080 records with numerical attributes, of which the paper takes

* quasi-identifiers: ``TAXINC`` (taxable income amount) and ``POTHVAL``
  (total other persons income);
* confidential: ``FEDTAX`` (federal income tax liability) for the
  *moderately correlated data set* (MCD, r ≈ 0.52) and ``FICA`` (social
  security payroll deduction) for the *highly correlated data set*
  (HCD, r ≈ 0.92).

The CASC distribution site has been offline for years, so this module
generates a seeded surrogate with the same record count, the same attribute
names, income-shaped (right-skewed) quasi-identifier marginals, and — the
property the paper's analysis hinges on — the same two correlation regimes
between quasi-identifiers and confidential attribute.  See DESIGN.md §3 for
the substitution rationale.
"""

from __future__ import annotations

import numpy as np

from .attributes import AttributeRole, numeric
from .dataset import Microdata
from .synthetic import (
    dependent_latent,
    latent_factor_block,
    to_affine_positive,
    to_lognormal_income,
)

#: Number of records in the original Census data set.
CENSUS_N = 1080

#: Default generator seed (fixed so benches and tests are reproducible).
CENSUS_SEED = 19321080

#: Paper-reported multiple correlation between QIs and FEDTAX (MCD).
MCD_CORRELATION = 0.52

#: Paper-reported multiple correlation between QIs and FICA (HCD).
HCD_CORRELATION = 0.92

_QI_NAMES = ("TAXINC", "POTHVAL")


def load_census(n: int = CENSUS_N, seed: int = CENSUS_SEED) -> Microdata:
    """Generate the 4-attribute Census surrogate.

    Returns a :class:`Microdata` with columns ``TAXINC``, ``POTHVAL``
    (quasi-identifiers) and ``FEDTAX``, ``FICA`` (confidential), all
    numeric and tie-free with probability 1.

    Parameters
    ----------
    n:
        Number of records (1,080 reproduces the paper's setting).
    seed:
        RNG seed; the default pins the data used throughout this repo.
    """
    if n < 4:
        raise ValueError(f"need at least 4 records, got {n}")
    rng = np.random.default_rng(seed)

    # Two income-like quasi-identifiers sharing a moderate latent factor.
    latents, _ = latent_factor_block(rng, n, 2, shared_weight=0.6)
    taxinc = to_lognormal_income(latents[:, 0], median=32_000.0, sigma=0.65)
    pothval = to_lognormal_income(latents[:, 1], median=18_000.0, sigma=0.85)

    # The paper's correlation figure is measured between the *released*
    # quasi-identifier columns and the confidential attribute, so the
    # dependence is induced on the transformed (log-normal) columns: the
    # driver lives in the span of the released QIs, hence the multiple
    # correlation of the confidential latent on the QIs equals alpha.
    qi_std = np.column_stack(
        [
            (taxinc - taxinc.mean()) / taxinc.std(),
            (pothval - pothval.mean()) / pothval.std(),
        ]
    )
    driver = qi_std.sum(axis=1)

    fedtax_latent = dependent_latent(rng, driver, MCD_CORRELATION)
    fica_latent = dependent_latent(rng, driver, HCD_CORRELATION)

    # Affine maps preserve Pearson correlation exactly; centers sit five
    # spreads above zero so the positivity clip virtually never binds.
    fedtax = to_affine_positive(fedtax_latent, center=8_000.0, spread=1_600.0)
    fica = to_affine_positive(fica_latent, center=3_000.0, spread=600.0)

    schema = [
        numeric("TAXINC", role=AttributeRole.QUASI_IDENTIFIER),
        numeric("POTHVAL", role=AttributeRole.QUASI_IDENTIFIER),
        numeric("FEDTAX", role=AttributeRole.CONFIDENTIAL),
        numeric("FICA", role=AttributeRole.CONFIDENTIAL),
    ]
    return Microdata(
        {"TAXINC": taxinc, "POTHVAL": pothval, "FEDTAX": fedtax, "FICA": fica},
        schema,
    )


def load_mcd(n: int = CENSUS_N, seed: int = CENSUS_SEED) -> Microdata:
    """Moderately correlated data set: QIs + FEDTAX (r ≈ 0.52), FICA dropped."""
    census = load_census(n=n, seed=seed)
    return census.drop(["FICA"]).with_roles(
        quasi_identifiers=_QI_NAMES, confidential=["FEDTAX"]
    )


def load_hcd(n: int = CENSUS_N, seed: int = CENSUS_SEED) -> Microdata:
    """Highly correlated data set: QIs + FICA (r ≈ 0.92), FEDTAX dropped."""
    census = load_census(n=n, seed=seed)
    return census.drop(["FEDTAX"]).with_roles(
        quasi_identifiers=_QI_NAMES, confidential=["FICA"]
    )
