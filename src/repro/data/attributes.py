"""Attribute metadata for microdata sets.

A microdata set is a table where each row describes one subject and each
column one attribute.  Statistical disclosure control classifies attributes
by how they contribute to disclosure (Hundepool et al., *Statistical
Disclosure Control*, Wiley 2012):

* **identifiers** unambiguously name the subject (e.g. passport number) and
  must be dropped before release;
* **quasi-identifiers** do not identify a subject on their own but may do so
  in combination (age, zip code, admission date, ...);
* **confidential** attributes carry the sensitive information the release is
  meant to convey (diagnosis, income, hospital charge, ...);
* **non-confidential** attributes are everything else.

This module defines the :class:`AttributeRole` and :class:`AttributeKind`
enumerations and the :class:`AttributeSpec` record that the rest of the
library uses to interpret columns.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Sequence


class AttributeRole(enum.Enum):
    """Disclosure role of an attribute in a microdata release."""

    IDENTIFIER = "identifier"
    QUASI_IDENTIFIER = "quasi_identifier"
    CONFIDENTIAL = "confidential"
    OTHER = "other"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class AttributeKind(enum.Enum):
    """Measurement scale of an attribute.

    * ``NUMERIC``: real-valued; supports means and Euclidean geometry.
    * ``ORDINAL``: categorical with a meaningful total order (e.g. education
      level); ranked operations such as the ordered Earth Mover's Distance
      are valid, arithmetic means are not.
    * ``NOMINAL``: categorical without order (e.g. occupation); only
      equality-based operations (mode, equal ground distance) are valid.
    """

    NUMERIC = "numeric"
    ORDINAL = "ordinal"
    NOMINAL = "nominal"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value

    @property
    def is_categorical(self) -> bool:
        """Whether values are category codes rather than measurements."""
        return self is not AttributeKind.NUMERIC

    @property
    def is_rankable(self) -> bool:
        """Whether values admit a total order (needed by Algorithm 3)."""
        return self is not AttributeKind.NOMINAL


@dataclass(frozen=True)
class AttributeSpec:
    """Static description of one microdata column.

    Parameters
    ----------
    name:
        Column name; unique within a :class:`~repro.data.dataset.Microdata`.
    kind:
        Measurement scale (:class:`AttributeKind`).
    role:
        Disclosure role (:class:`AttributeRole`).
    categories:
        For categorical kinds, the ordered tuple of category labels.  Column
        values are stored as integer codes indexing this tuple.  Must be
        empty for ``NUMERIC`` attributes.
    """

    name: str
    kind: AttributeKind = AttributeKind.NUMERIC
    role: AttributeRole = AttributeRole.OTHER
    categories: tuple[str, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("attribute name must be a non-empty string")
        if not isinstance(self.kind, AttributeKind):
            raise TypeError(f"kind must be an AttributeKind, got {self.kind!r}")
        if not isinstance(self.role, AttributeRole):
            raise TypeError(f"role must be an AttributeRole, got {self.role!r}")
        if self.kind is AttributeKind.NUMERIC:
            if self.categories:
                raise ValueError(
                    f"numeric attribute {self.name!r} must not define categories"
                )
        else:
            if not self.categories:
                raise ValueError(
                    f"categorical attribute {self.name!r} requires categories"
                )
            if len(set(self.categories)) != len(self.categories):
                raise ValueError(
                    f"attribute {self.name!r} has duplicate categories"
                )
        # Normalise to an immutable tuple even if a list was passed.
        object.__setattr__(self, "categories", tuple(self.categories))

    # -- convenience predicates -------------------------------------------------

    @property
    def is_numeric(self) -> bool:
        return self.kind is AttributeKind.NUMERIC

    @property
    def is_categorical(self) -> bool:
        return self.kind.is_categorical

    @property
    def is_quasi_identifier(self) -> bool:
        return self.role is AttributeRole.QUASI_IDENTIFIER

    @property
    def is_confidential(self) -> bool:
        return self.role is AttributeRole.CONFIDENTIAL

    @property
    def n_categories(self) -> int:
        """Number of category labels (0 for numeric attributes)."""
        return len(self.categories)

    # -- derivation helpers -----------------------------------------------------

    def with_role(self, role: AttributeRole) -> "AttributeSpec":
        """Return a copy of this spec with a different disclosure role."""
        return replace(self, role=role)

    def code_of(self, label: str) -> int:
        """Map a category label to its integer code.

        Raises
        ------
        KeyError
            If the label is not one of :attr:`categories`.
        """
        try:
            return self.categories.index(label)
        except ValueError:
            raise KeyError(
                f"{label!r} is not a category of attribute {self.name!r}"
            ) from None

    def label_of(self, code: int) -> str:
        """Map an integer code back to its category label."""
        if not 0 <= code < len(self.categories):
            raise KeyError(
                f"code {code} out of range for attribute {self.name!r} "
                f"({len(self.categories)} categories)"
            )
        return self.categories[code]


def numeric(name: str, role: AttributeRole = AttributeRole.OTHER) -> AttributeSpec:
    """Shorthand constructor for a numeric attribute spec."""
    return AttributeSpec(name=name, kind=AttributeKind.NUMERIC, role=role)


def ordinal(
    name: str,
    categories: Sequence[str],
    role: AttributeRole = AttributeRole.OTHER,
) -> AttributeSpec:
    """Shorthand constructor for an ordinal attribute spec."""
    return AttributeSpec(
        name=name,
        kind=AttributeKind.ORDINAL,
        role=role,
        categories=tuple(categories),
    )


def nominal(
    name: str,
    categories: Sequence[str],
    role: AttributeRole = AttributeRole.OTHER,
) -> AttributeSpec:
    """Shorthand constructor for a nominal attribute spec."""
    return AttributeSpec(
        name=name,
        kind=AttributeKind.NOMINAL,
        role=role,
        categories=tuple(categories),
    )
